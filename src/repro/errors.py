"""Exception hierarchy for the library.

Everything raised deliberately by :mod:`repro` derives from
:class:`ReproError` so applications can catch library failures without
swallowing genuine programming errors.

Error taxonomy: retryable vs terminal
-------------------------------------

The supervised execution layer (:mod:`repro.resilience`,
:func:`repro.parallel.supervised_map`) splits failures into two classes:

* **Retryable** — transient conditions where re-running the *same* work
  item can legitimately succeed: :class:`ConvergenceError` (a Newton
  run that strayed from a bad warm start or marginal ladder rung can
  converge on a clean retry), :class:`WorkerCrash` (the process-pool
  worker died — the work itself may be fine) and :class:`ItemTimeout`
  (a deadline expired, e.g. on a loaded host).  The canonical set is
  :data:`RETRYABLE_ERRORS`, the default of
  :attr:`repro.resilience.RunPolicy.retryable`.
* **Terminal** — deterministic failures a retry cannot fix, because
  re-running identical inputs reproduces them: :class:`NetlistError` /
  :class:`PlanError` (the description itself is malformed),
  :class:`ModelError` (unphysical parameters), :class:`ExtractionError`
  / :class:`MeasurementError` (degenerate data), and any non-repro
  exception raised by user code (``TypeError``, ``ValueError``...).
  These fail fast — one attempt, attributed to the item that raised
  them — so a retry policy can never mask a real bug by hammering it.

A custom :class:`~repro.resilience.RunPolicy` may widen or narrow the
retryable set per call site; the split above is the library default.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """A circuit description is malformed (unknown node, duplicate name,
    missing ground reference, bad element value...)."""


class PlanError(NetlistError):
    """A declarative analysis plan failed validation.

    Raised by the Session planner *before any solve runs*: empty grids,
    unknown nodes or elements, conflicting parameter overrides,
    inconsistent windows.  Subclasses :class:`NetlistError` so code
    written against the legacy entry points (which raised NetlistError
    for the same mistakes) keeps catching it.
    """


class SubcktError(NetlistError):
    """A hierarchical ``.SUBCKT`` definition or ``X`` instantiation is
    malformed.  Subclasses :class:`NetlistError` (a bad hierarchy is a
    bad netlist); the three concrete failure modes below let tests and
    tooling distinguish the taxonomy without string-matching messages.
    """


class UnknownSubcktError(SubcktError):
    """An ``X`` card references a subcircuit name with no ``.SUBCKT``
    definition anywhere in the deck (lookup is case-insensitive, like
    every SPICE name)."""


class SubcktArityError(SubcktError):
    """An ``X`` card connects the wrong number of nodes for its
    subcircuit's declared port list."""


class SubcktRecursionError(SubcktError):
    """Subcircuit expansion found a cycle: a ``.SUBCKT`` instantiates
    itself, directly or through a chain of other subcircuits.  Flattening
    a cycle would never terminate, so it is detected and named."""


class ExperimentError(ReproError):
    """An experiment runner failed.

    Carries the experiment id in its message so batch runs (and their
    process fan-out, where tracebacks lose the submitting call site)
    keep failure attribution.
    """


class ConvergenceError(ReproError):
    """The nonlinear DC solver failed to converge.

    Carries the best iterate found so callers can inspect how far the
    solve got (useful when diagnosing pathological bias points).
    """

    def __init__(self, message: str, best_residual: float = float("nan")):
        super().__init__(message)
        self.best_residual = best_residual


class ItemTimeout(ReproError):
    """A supervised work item exceeded its :class:`RunPolicy` deadline.

    Raised (or recorded, per the policy's on-failure action) by the
    supervised execution layer; retryable by default — a timeout on a
    loaded host says nothing about the work itself.
    """


class WorkerCrash(ReproError):
    """A process-pool worker died while holding a supervised work item.

    Covers both a real ``BrokenProcessPool`` (the pool reported a dead
    worker; the supervisor attributes it to the unfinished items) and
    the deterministic simulation injected by :mod:`repro.faultinject`.
    Retryable by default: the *work* may be fine even when the process
    that ran it was not.
    """


class FaultInjected(ReproError):
    """A generic fault fired by the :mod:`repro.faultinject` harness.

    Deliberately *terminal* (not in :data:`RETRYABLE_ERRORS`): tests use
    it to prove that non-retryable failures are never retried.
    """


class BenchRegError(ReproError):
    """A benchmark-campaign governance operation failed (malformed
    index, unresolvable baseline, or an attempt to record/gate a
    campaign from a fault-perturbed run).  Terminal: retrying the same
    record/check reproduces it."""


class ExtractionError(ReproError):
    """Parameter extraction failed (degenerate data, singular system...)."""


class MeasurementError(ReproError):
    """A simulated instrument was asked to do something out of range."""


class ModelError(ReproError):
    """A device model received unphysical parameters or bias."""


#: The default retryable set of the supervised execution layer (see the
#: module docstring's taxonomy).  Deliberately a tuple of types so it
#: drops straight into ``isinstance`` and ``RunPolicy.retryable``.
RETRYABLE_ERRORS = (ConvergenceError, WorkerCrash, ItemTimeout)
