"""Supervised execution: failure as a first-class, attributed outcome.

Before this layer, one ``ConvergenceError`` in Monte-Carlo trial 7412
aborted the whole run, one worker exception killed an entire
``parallel_map`` batch, and a mid-run pool death silently re-ran every
item serially.  The resilience layer makes every recovery decision
explicit, bounded, and visible:

* :class:`RunPolicy` — the declarative knob set: retry budget,
  exponential backoff (injectable sleep), per-item deadline, and the
  on-failure action (``raise`` | ``skip`` | ``record``).
* :class:`Outcome` — the per-item record supervised execution returns
  instead of dying: status (``ok`` / ``failed`` / ``timed_out`` /
  ``skipped``), the captured exception (pickled home from the worker,
  with a :class:`CapturedFailure` stand-in when the exception itself
  cannot cross the pool), attempt count, and worker pid.
* :func:`supervised_call` — the single-item primitive: run a thunk
  under a policy (retry loop, backoff, deadline, deterministic fault
  injection via :mod:`repro.faultinject`).
* :func:`repro.parallel.supervised_map` — the fan-out form: per-item
  outcomes over a process pool, distinguishing submission-time
  infrastructure failures (fall back serially, counted) from mid-run
  worker crashes (retry only the unfinished items, never the completed
  ones).

Every decision lands in :data:`repro.spice.stats.STATS` (``retries``,
``timeouts``, ``worker_failures``, ``serial_fallbacks``) and — when a
tracer is installed — in ``supervised``/``retry`` telemetry spans, so
``--bench``, ``--trace`` and ``--metrics`` all show recovery activity.

The upward wiring: ``Session.run_many`` / ``run_plans`` accept a
policy and return partial results with failure records; a
:class:`~repro.spice.plans.MonteCarlo` plan carries its own policy and
degrades gracefully (``MonteCarloResult.failed_trials`` attributes the
exact trial index and exception of every casualty);
``registry.run_experiments`` reports per-experiment outcomes.
"""

from .outcome import CapturedFailure, Outcome, capture_error
from .policy import RunPolicy
from .supervisor import supervised_call

__all__ = [
    "CapturedFailure",
    "Outcome",
    "RunPolicy",
    "capture_error",
    "supervised_call",
]
