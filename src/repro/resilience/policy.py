"""The :class:`RunPolicy` dataclass: how supervised execution recovers.

A policy is plain declarative data (plus an injectable sleep for
tests), picklable whenever ``sleep`` is left at its default — which is
what lets a :class:`~repro.spice.plans.MonteCarlo` plan carry one
across a process boundary.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type

from ..errors import RETRYABLE_ERRORS, ReproError

#: The legal on-failure actions.
ON_FAILURE = ("raise", "skip", "record")


@dataclass(frozen=True)
class RunPolicy:
    """Retry/timeout/failure policy for supervised execution.

    * ``max_retries`` — extra attempts after the first (so an item runs
      at most ``max_retries + 1`` times).  Only errors matching
      ``retryable`` are retried; terminal errors fail on attempt 1.
    * ``backoff_s`` / ``backoff_factor`` — exponential backoff: the
      sleep before retry *k* (1-based) is
      ``backoff_s * backoff_factor ** (k - 1)``.  ``backoff_s=0``
      (the default) retries immediately.
    * ``timeout_s`` — per-item deadline.  In pool execution the
      supervisor waits at most this long for the item's result once it
      begins waiting on it; in serial execution the item runs on a
      watchdog thread with the same deadline.  ``None`` disables it.
    * ``on_failure`` — what a terminally failed item does to the batch:
      ``"raise"`` re-raises the original exception (legacy
      ``parallel_map`` semantics), ``"record"`` keeps a failed
      :class:`~repro.resilience.Outcome` in the results, ``"skip"``
      records it with status ``"skipped"`` so result assemblers drop
      the item silently.
    * ``retryable`` — exception types worth re-attempting; defaults to
      :data:`repro.errors.RETRYABLE_ERRORS` (transient convergence
      failures, worker crashes, timeouts).
    * ``max_pool_rebuilds`` — how many times a broken process pool is
      rebuilt for the *unfinished* items before the supervisor gives up
      on fan-out and finishes them serially (counted in
      ``STATS.serial_fallbacks``).
    * ``sleep`` — injectable sleep (default ``time.sleep``), compared
      and hashed as identity-excluded so two policies differing only in
      their sleep hook are equal.  Backoff sleeps always run in the
      submitting process, so a recording sleep sees every retry of a
      fanned run too.
    """

    max_retries: int = 0
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    timeout_s: Optional[float] = None
    on_failure: str = "record"
    retryable: Tuple[Type[BaseException], ...] = RETRYABLE_ERRORS
    max_pool_rebuilds: int = 1
    sleep: Optional[Callable[[float], None]] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self):
        if self.max_retries < 0:
            raise ReproError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0 or not math.isfinite(self.backoff_s):
            raise ReproError(f"backoff_s must be finite and >= 0, got {self.backoff_s}")
        if self.backoff_factor <= 0 or not math.isfinite(self.backoff_factor):
            raise ReproError(
                f"backoff_factor must be finite and > 0, got {self.backoff_factor}"
            )
        if self.timeout_s is not None and not self.timeout_s > 0:
            raise ReproError(f"timeout_s must be > 0 or None, got {self.timeout_s}")
        if self.on_failure not in ON_FAILURE:
            raise ReproError(
                f"on_failure must be one of {ON_FAILURE}, got {self.on_failure!r}"
            )
        if self.max_pool_rebuilds < 0:
            raise ReproError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )
        retryable = tuple(self.retryable)
        for kind in retryable:
            if not (isinstance(kind, type) and issubclass(kind, BaseException)):
                raise ReproError(f"retryable entry {kind!r} is not an exception type")
        object.__setattr__(self, "retryable", retryable)

    # -- derived knobs -------------------------------------------------
    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def backoff_for(self, retry_number: int) -> float:
        """Sleep before the ``retry_number``-th retry (1-based)."""
        return self.backoff_s * self.backoff_factor ** (retry_number - 1)

    def is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retryable)

    def do_sleep(self, seconds: float) -> None:
        if seconds > 0:
            (self.sleep or time.sleep)(seconds)

    def describe(self) -> dict:
        """JSON-ready summary (used by plan/result ``to_dict``)."""
        return {
            "max_retries": self.max_retries,
            "backoff_s": self.backoff_s,
            "backoff_factor": self.backoff_factor,
            "timeout_s": self.timeout_s,
            "on_failure": self.on_failure,
            "retryable": [kind.__name__ for kind in self.retryable],
            "max_pool_rebuilds": self.max_pool_rebuilds,
        }


__all__ = ["ON_FAILURE", "RunPolicy"]
