"""The supervised-attempt engine shared by serial and fanned execution.

One code path owns the semantics — attempt numbering, fault injection,
retry classification, exponential backoff, deadline enforcement, STATS
accounting, retry telemetry — and two transports reuse it:
:func:`supervised_call` runs a thunk in-process (the serial path and
the per-trial Monte-Carlo supervisor), while
:func:`repro.parallel.supervised_map` ships single attempts into pool
workers via :func:`attempt_in_worker` and feeds the failures back
through the same classification helpers.

Retries always happen in the *submitting* process: a pool worker runs
exactly one attempt per submission and returns an envelope (result or
captured exception plus its pid), so attempt counts, backoff sleeps and
the ``retries``/``timeouts``/``worker_failures`` counters are identical
for serial and fanned execution — the property the fault-injection
suite pins.

Lazy imports of ``STATS`` and the telemetry tracer keep this module out
of the ``repro.spice`` import graph (same convention as
:mod:`repro.parallel`, which sits below the session layer).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Optional

from .. import faultinject
from ..errors import ItemTimeout, WorkerCrash
from .outcome import (
    FAILED,
    OK,
    SKIPPED,
    TIMED_OUT,
    Outcome,
    capture_error,
    format_traceback,
)
from .policy import RunPolicy


def _stats():
    from ..spice.stats import STATS

    return STATS


def _tracer():
    from ..telemetry import tracer as _tele

    return _tele.ACTIVE


def record_retry(
    policy: RunPolicy, index: int, attempt: int, reason: BaseException
) -> None:
    """Account one retry decision: counter, telemetry span, backoff.

    ``attempt`` is the attempt that just failed; the backoff precedes
    attempt + 1.  The ``retry`` span wraps the backoff sleep, so its
    duration is the recovery latency the policy injected.
    """
    _stats().retries += 1
    backoff = policy.backoff_for(attempt)
    trc = _tracer()
    if trc is not None:
        with trc.span(
            "retry",
            item=index,
            attempt=attempt + 1,
            backoff_s=backoff,
            reason=type(reason).__name__,
        ):
            policy.do_sleep(backoff)
    else:
        policy.do_sleep(backoff)


def failure_status(error: BaseException) -> str:
    """The outcome status a terminal failure maps to (pure)."""
    return TIMED_OUT if isinstance(error, ItemTimeout) else FAILED


def count_failure(error: BaseException) -> None:
    """Account one failed attempt's STATS movement (every failure event
    counts, retried or terminal — the counters measure recovery
    activity, not just final state)."""
    if isinstance(error, ItemTimeout):
        _stats().timeouts += 1
    elif isinstance(error, WorkerCrash):
        _stats().worker_failures += 1


def _call_with_deadline(thunk: Callable[[], Any], timeout_s: Optional[float]) -> Any:
    """Run ``thunk``, raising :class:`ItemTimeout` past the deadline.

    The serial transport's deadline: the work runs on a daemon watchdog
    thread and is *abandoned* (not killed) on expiry — safe for the
    library's pure work functions, but a reason to keep ``timeout_s``
    off for work that mutates shared state in place.
    """
    if timeout_s is None:
        return thunk()
    box: dict = {}

    def runner():
        try:
            box["value"] = thunk()
        except BaseException as exc:  # ships the real error to the caller
            box["error"] = exc

    thread = threading.Thread(target=runner, daemon=True, name="repro-deadline")
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise ItemTimeout(f"work item exceeded its {timeout_s} s deadline")
    if "error" in box:
        raise box["error"]
    return box["value"]


def supervised_call(
    thunk: Callable[[], Any],
    index: int = 0,
    policy: Optional[RunPolicy] = None,
    fault_spec: Optional[str] = "__active__",
    start_attempt: int = 1,
) -> Outcome:
    """Run one thunk under a policy; returns its :class:`Outcome`.

    The in-process supervised primitive: consults the fault plan before
    each attempt (``fault_spec`` defaults to the active plan; pass
    ``None`` to disarm injection, e.g. from compatibility shims),
    enforces the deadline, retries retryable failures with backoff, and
    classifies the terminal result.  ``on_failure="raise"`` re-raises
    the original exception after the retry budget is spent.
    ``start_attempt`` lets the pool supervisor hand an item over
    mid-retry-budget without resetting its attempt count.
    """
    policy = policy or RunPolicy()
    if fault_spec == "__active__":
        fault_spec = faultinject.active_spec()
    t0 = time.perf_counter()
    attempt = start_attempt
    while True:
        try:
            if fault_spec is not None:
                faultinject.check(index, attempt, spec=fault_spec)
            value = _call_with_deadline(thunk, policy.timeout_s)
            return Outcome(
                index=index,
                status=OK,
                value=value,
                attempts=attempt,
                worker_pid=os.getpid(),
                wall_s=time.perf_counter() - t0,
            )
        except Exception as exc:
            status = failure_status(exc)
            count_failure(exc)
            if policy.is_retryable(exc) and attempt < policy.max_attempts:
                record_retry(policy, index, attempt, exc)
                attempt += 1
                continue
            if policy.on_failure == "raise":
                raise
            return Outcome(
                index=index,
                status=SKIPPED if policy.on_failure == "skip" else status,
                error=capture_error(exc),
                attempts=attempt,
                worker_pid=os.getpid(),
                wall_s=time.perf_counter() - t0,
                traceback=format_traceback(exc),
            )


def attempt_in_worker(payload) -> dict:
    """One supervised attempt, pool-worker side: an envelope, never a raise.

    ``payload`` is ``(func, item, index, attempt, fault_spec)``.  The
    work function's exception comes home *inside* the envelope (pickled
    when possible, a :class:`CapturedFailure` stand-in otherwise), so
    any exception raised by the future itself is — by construction —
    pool infrastructure: payload/result pickling or a broken pool.
    That is what lets the supervisor classify failures without
    guessing from exception types.
    """
    func, item, index, attempt, fault_spec = payload
    try:
        if fault_spec is not None:
            faultinject.check(index, attempt, spec=fault_spec)
        return {"ok": True, "value": func(item), "pid": os.getpid()}
    except Exception as exc:
        return {
            "ok": False,
            "error": capture_error(exc),
            "traceback": format_traceback(exc),
            "pid": os.getpid(),
        }


__all__ = [
    "attempt_in_worker",
    "count_failure",
    "failure_status",
    "record_retry",
    "supervised_call",
]
