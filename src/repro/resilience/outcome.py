"""Per-item :class:`Outcome` records and pickle-safe exception capture."""

from __future__ import annotations

import pickle
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import ReproError

#: Outcome statuses.
OK = "ok"
FAILED = "failed"
TIMED_OUT = "timed_out"
SKIPPED = "skipped"


class CapturedFailure(ReproError):
    """Stand-in for a worker exception that could not be pickled home.

    Preserves the original type name, message, and formatted traceback
    so attribution survives even when the exception object itself (a
    closure-holding custom error, say) cannot cross the pool.
    """

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message


def capture_error(error: BaseException) -> BaseException:
    """The exception itself when picklable, else a :class:`CapturedFailure`."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return CapturedFailure(type(error).__name__, str(error))


def format_traceback(error: BaseException) -> str:
    return "".join(
        _traceback.format_exception(type(error), error, error.__traceback__)
    )


@dataclass
class Outcome:
    """What happened to one supervised work item.

    ``value`` holds the result for ``ok`` items; ``error`` the captured
    exception otherwise (``timed_out`` carries the
    :class:`~repro.errors.ItemTimeout`).  ``attempts`` counts every run
    including the successful one; ``retried`` is sugar for
    ``attempts > 1``.  ``worker_pid`` names the process that produced
    the final attempt (the parent pid for serial execution).
    """

    index: int
    status: str
    value: Any = None
    error: Optional[BaseException] = None
    attempts: int = 1
    worker_pid: Optional[int] = None
    wall_s: float = 0.0
    traceback: str = field(default="", repr=False)

    @property
    def ok(self) -> bool:
        return self.status == OK

    @property
    def retried(self) -> bool:
        return self.attempts > 1

    @property
    def error_type(self) -> Optional[str]:
        if self.error is None:
            return None
        if isinstance(self.error, CapturedFailure):
            return self.error.error_type
        return type(self.error).__name__

    def unwrap(self) -> Any:
        """The value for ``ok`` outcomes; re-raises the error otherwise."""
        if self.ok:
            return self.value
        raise self.error

    def to_dict(self) -> dict:
        """JSON-ready snapshot (exception rendered as type + message)."""
        out = {
            "index": self.index,
            "status": self.status,
            "attempts": self.attempts,
            "retried": self.retried,
            "worker_pid": self.worker_pid,
            "wall_s": round(self.wall_s, 6),
        }
        if self.error is not None:
            out["error_type"] = self.error_type
            out["error"] = str(self.error)
        return out


__all__ = [
    "FAILED",
    "OK",
    "SKIPPED",
    "TIMED_OUT",
    "CapturedFailure",
    "Outcome",
    "capture_error",
    "format_traceback",
]
