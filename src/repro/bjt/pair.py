"""The matched BJT pair of the paper's Fig. 2.

Two transistors QA (area 1) and QB (area ``p`` > 1) forced to identical
collector currents produce

    dVBE(T) = VBE_A - VBE_B = (k*T/q) * ln(p)        (ideal, PTAT)

which is the temperature probe at the heart of the test structure
(paper eq. 16).  :class:`MatchedPair` evaluates both the ideal relation
and the real one — finite ``IS`` mismatch, unequal collector currents
(the ``X`` factor of paper eqs. 19-20) and substrate leakage all bend the
PTAT line, and reproducing those bends is what Table 1 is about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from ..constants import thermal_voltage
from ..errors import ModelError
from .model import GummelPoonModel
from .parameters import BJTParameters, PAPER_PNP_SMALL
from .substrate import SubstratePNP


def derive_qb_params(
    base_params: BJTParameters, area_ratio: float, is_mismatch: float = 1.0
) -> BJTParameters:
    """QB's parameters: the area-scaled unit device with IS mismatch.

    The one place the "QB is an area-``p`` copy of QA, mismatched in
    IS" rule lives — the behavioural pair, the Fig. 3 cell netlist and
    the sub-1V netlist all derive QB through here so they cannot drift
    apart.
    """
    params = base_params.scaled(area_ratio, name="QB")
    if is_mismatch != 1.0:
        params = replace(params, is_=params.is_ * is_mismatch)
    return params


@dataclass
class MatchedPair:
    """QA (1x) / QB (p-times) matched pair biased at equal currents.

    Parameters
    ----------
    base_params:
        Parameters of the unit device QA.
    area_ratio:
        The paper's ``p`` (8 for the silicon cell: 6 um^2 vs 48 um^2).
    is_mismatch:
        Multiplicative mismatch on QB's saturation current (1.0 = perfectly
        matched); represents lithography/process mismatch of a real pair.
    substrate_a, substrate_b:
        Optional parasitic substrate transistors.  When present they
        divert part of the forced current to the substrate, which is the
        paper's explanation for QB's eight-times-larger leakage.
    """

    base_params: BJTParameters = field(default_factory=lambda: PAPER_PNP_SMALL)
    area_ratio: float = 8.0
    is_mismatch: float = 1.0
    substrate_a: Optional[SubstratePNP] = None
    substrate_b: Optional[SubstratePNP] = None

    def __post_init__(self) -> None:
        if self.area_ratio <= 1.0:
            raise ModelError("the paper requires an area ratio p > 1")
        if self.is_mismatch <= 0.0:
            raise ModelError("IS mismatch factor must be positive")
        self.qa = GummelPoonModel(self.base_params)
        self.qb = GummelPoonModel(
            derive_qb_params(self.base_params, self.area_ratio, self.is_mismatch)
        )

    # ------------------------------------------------------------------
    def ideal_delta_vbe(self, temperature_k: float) -> float:
        """The textbook PTAT value ``(kT/q) ln p`` [V] (paper eq. 16)."""
        return thermal_voltage(temperature_k) * math.log(self.area_ratio)

    def delta_vbe(
        self,
        temperature_k: float,
        collector_current: float,
        current_b: Optional[float] = None,
        vce_headroom: float = 1.0,
    ) -> float:
        """Actual ``VBE_A - VBE_B`` [V] for the given bias.

        ``current_b`` defaults to ``collector_current`` (the equal-current
        condition the RX1/RX2 network enforces in the test cell); passing
        a different value models the inequality the paper corrects with
        eqs. 17-20.  Substrate leakage, when modelled, *diverts* part of
        each forced current before it reaches the junction.
        """
        if collector_current <= 0.0:
            raise ModelError("collector current must be positive")
        ia = collector_current
        ib = collector_current if current_b is None else current_b
        if ib <= 0.0:
            raise ModelError("QB collector current must be positive")
        if self.substrate_a is not None:
            ia = ia - self.substrate_a.leakage_current(temperature_k, vce_headroom)
        if self.substrate_b is not None:
            ib = ib - self.substrate_b.leakage_current(temperature_k, vce_headroom)
        if ia <= 0.0 or ib <= 0.0:
            raise ModelError("substrate leakage exceeds the forced bias current")
        vbe_a = self.qa.vbe_for_ic(ia, temperature_k)
        vbe_b = self.qb.vbe_for_ic(ib, temperature_k)
        return vbe_a - vbe_b

    def delta_vbe_nonideality(
        self, temperature_k: float, collector_current: float, **kwargs
    ) -> float:
        """Deviation of the real ``dVBE`` from the PTAT ideal [V]."""
        return self.delta_vbe(
            temperature_k, collector_current, **kwargs
        ) - self.ideal_delta_vbe(temperature_k)
