"""Parasitic substrate PNP leakage (paper sections 4 and 6).

In the paper's BiCMOS process the test-cell PNPs carry a parasitic
substrate transistor.  When the device operates "at the limit of the
saturation" — unavoidable at low supply voltage — the parasitic turns on
and injects current into the substrate.  Because it scales with emitter
area it is eight times larger for QB than for QA, which unbalances the
supposedly identical collector currents and adds the non-linear,
temperature-growing component to ``dVBE`` that makes the measured
``VREF(T)`` of Fig. 8 rise at high temperature.

The model is the same SPICE temperature law as the main device (its own
``EG``/``XTI``), gated by a saturation-depth factor: the closer the
collector-emitter headroom is to zero, the harder the parasitic is driven.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..constants import K_BOLTZMANN_EV
from ..errors import ModelError


@dataclass(frozen=True)
class SubstratePNP:
    """Substrate-injection leakage model.

    Parameters
    ----------
    i_leak_ref:
        Leakage current at ``t_ref`` for unit area and full saturation [A].
        The default anchors the leakage to ~1 uA at 418 K for the 8x
        device, the magnitude needed to explain the paper's Fig. 8 rise.
    eg, xti:
        Temperature law of the parasitic junction (bulk silicon values —
        the parasitic does not see the emitter's bandgap narrowing).
    t_ref:
        Reference temperature [K].
    area:
        Relative emitter area (8 for QB, 1 for QA).
    vsat_onset:
        Collector-emitter headroom [V] below which the parasitic starts
        conducting; the drive factor ramps linearly to 1 at zero headroom.
    """

    i_leak_ref: float = 1.6e-13
    eg: float = 1.12
    xti: float = 3.0
    t_ref: float = 300.0
    area: float = 1.0
    vsat_onset: float = 0.3

    def __post_init__(self) -> None:
        if self.i_leak_ref < 0.0:
            raise ModelError("leakage reference current must be non-negative")
        if self.area <= 0.0:
            raise ModelError("area must be positive")
        if self.t_ref <= 0.0:
            raise ModelError("reference temperature must be positive")
        if self.vsat_onset <= 0.0:
            raise ModelError("saturation onset must be positive")

    def saturation_drive(self, vce_headroom: float) -> float:
        """Drive factor in [0, 1] from the collector-emitter headroom.

        1 when the device is fully saturated (no headroom), 0 when it has
        at least ``vsat_onset`` volts of headroom.
        """
        if vce_headroom <= 0.0:
            return 1.0
        if vce_headroom >= self.vsat_onset:
            return 0.0
        return 1.0 - vce_headroom / self.vsat_onset

    def leakage_current(
        self, temperature_k: float, vce_headroom: float = 0.0
    ) -> float:
        """Substrate leakage [A] at temperature and headroom.

        Follows ``i_leak_ref * area * (T/T0)**XTI * exp(EG/k*(1/T0-1/T))``
        times the saturation drive — i.e. the parasitic's own saturation
        current law, paper eq. 1 applied to the parasitic device.
        """
        if temperature_k <= 0.0:
            raise ModelError("leakage requires a positive temperature")
        drive = self.saturation_drive(vce_headroom)
        if drive == 0.0:
            return 0.0
        ratio = temperature_k / self.t_ref
        exponent = (self.eg / K_BOLTZMANN_EV) * (1.0 / self.t_ref - 1.0 / temperature_k)
        return self.i_leak_ref * self.area * ratio**self.xti * math.exp(exponent) * drive

    def scaled(self, area_factor: float) -> "SubstratePNP":
        """Return a copy with the area multiplied (QB = QA.scaled(8))."""
        if area_factor <= 0.0:
            raise ModelError("area factor must be positive")
        return SubstratePNP(
            i_leak_ref=self.i_leak_ref,
            eg=self.eg,
            xti=self.xti,
            t_ref=self.t_ref,
            area=self.area * area_factor,
            vsat_onset=self.vsat_onset,
        )
