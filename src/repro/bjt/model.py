"""DC Gummel-Poon model: ``IS(T)``, ``IC(VBE)`` and its inversions.

Everything the extraction methods consume comes from here:

* :meth:`GummelPoonModel.is_at` — the SPICE temperature law, paper eq. 1;
* :meth:`GummelPoonModel.collector_current` — forward transport current
  with base-width modulation (``VAR``/``VAF`` through the normalised base
  charge ``qb``) and high-injection roll-off (``IKF``);
* :meth:`GummelPoonModel.vbe_for_ic` — the exact inversion used to
  synthesise ``VBE(T)`` characteristics at constant collector current;
* :meth:`GummelPoonModel.terminal_currents` — solves the series-resistance
  feedback so full Gummel plots (paper Fig. 5) show the realistic
  high-current roll-off.

Sign convention: the model works in *forward-junction* voltages (positive
``vbe`` forward-biases the emitter junction) regardless of NPN/PNP; the
circuit layer applies polarity.
"""

from __future__ import annotations

import math
from typing import Tuple

from scipy.optimize import brentq

from ..constants import K_BOLTZMANN_EV, thermal_voltage
from ..errors import ModelError
from .parameters import BJTParameters

#: Junction voltages are solved within [0, _VBE_MAX] volts.
_VBE_MAX = 1.5

#: Absolute tolerance on junction-voltage solves [V].
_V_TOL = 1e-13


class GummelPoonModel:
    """A DC Gummel-Poon transistor bound to a parameter set."""

    def __init__(self, params: BJTParameters):
        self.params = params

    # ------------------------------------------------------------------
    # Temperature updates of the card parameters
    # ------------------------------------------------------------------
    def vt(self, temperature_k: float) -> float:
        """Thermal voltage at ``temperature_k`` [V]."""
        return thermal_voltage(temperature_k)

    def is_at(self, temperature_k: float) -> float:
        """Saturation current at ``temperature_k`` (paper eq. 1) [A]."""
        p = self.params
        if temperature_k <= 0.0:
            raise ModelError("IS(T) requires a positive temperature")
        ratio = temperature_k / p.tnom
        exponent = (p.eg / K_BOLTZMANN_EV) * (1.0 / p.tnom - 1.0 / temperature_k)
        return p.is_ * ratio**p.xti * math.exp(exponent)

    def bf_at(self, temperature_k: float) -> float:
        """Forward beta at temperature (SPICE ``BF*(T/TNOM)**XTB``)."""
        p = self.params
        return p.bf * (temperature_k / p.tnom) ** p.xtb

    def ise_at(self, temperature_k: float) -> float:
        """B-E leakage saturation current at temperature.

        SPICE law: ``ISE(T) = ISE * (T/TNOM)**(XTI/NE - XTB)
        * exp(EG/(NE*k) * (1/TNOM - 1/T))``.
        """
        p = self.params
        ratio = temperature_k / p.tnom
        exponent = (p.eg / (p.ne * K_BOLTZMANN_EV)) * (1.0 / p.tnom - 1.0 / temperature_k)
        return p.ise * ratio ** (p.xti / p.ne - p.xtb) * math.exp(exponent)

    # ------------------------------------------------------------------
    # Junction-referred currents
    # ------------------------------------------------------------------
    def _qb(self, vbe: float, vbc: float, temperature_k: float) -> float:
        """Normalised base charge ``qb = q1/2 * (1 + sqrt(1 + 4*q2))``."""
        p = self.params
        denom = 1.0 - vbe / p.var - vbc / p.vaf
        if denom <= 0.0:
            raise ModelError(
                f"base charge collapsed (vbe={vbe:.3f} V against VAR={p.var} V)"
            )
        q1 = 1.0 / denom
        if math.isinf(p.ikf):
            q2 = 0.0
        else:
            nf_vt = p.nf * self.vt(temperature_k)
            q2 = (self.is_at(temperature_k) / p.ikf) * math.expm1(vbe / nf_vt)
        return 0.5 * q1 * (1.0 + math.sqrt(1.0 + 4.0 * max(q2, 0.0)))

    def collector_current(
        self, vbe: float, temperature_k: float, vbc: float = 0.0
    ) -> float:
        """Collector current for junction voltages ``vbe``/``vbc`` [A].

        ``IC = IS(T) * (exp(vbe/(NF*VT)) - exp(vbc/(NR*VT))) / qb`` — the
        forward transport current normalised by the base charge.  With
        ``vbc = 0`` this is the Gummel-plot configuration used throughout
        the paper's measurements.
        """
        p = self.params
        vt = self.vt(temperature_k)
        is_t = self.is_at(temperature_k)
        transport = math.expm1(vbe / (p.nf * vt)) - math.expm1(vbc / (p.nr * vt))
        return is_t * transport / self._qb(vbe, vbc, temperature_k)

    def base_current(self, vbe: float, temperature_k: float) -> float:
        """Base current: ideal ``IC-like/BF`` plus ``ISE`` leakage [A]."""
        p = self.params
        vt = self.vt(temperature_k)
        ideal = (
            self.is_at(temperature_k)
            * math.expm1(vbe / (p.nf * vt))
            / self.bf_at(temperature_k)
        )
        leakage = self.ise_at(temperature_k) * math.expm1(vbe / (p.ne * vt))
        return ideal + leakage

    # ------------------------------------------------------------------
    # Inversions
    # ------------------------------------------------------------------
    def vbe_for_ic(
        self, ic: float, temperature_k: float, vbc: float = 0.0
    ) -> float:
        """Junction ``VBE`` giving collector current ``ic`` at temperature.

        This synthesises the constant-current ``VBE(T)`` characteristics
        the classical extraction fits (paper eq. 13 data).  The inversion
        is exact (bracketing root solve on the monotone ``IC(VBE)``).
        """
        if ic <= 0.0:
            raise ModelError("vbe_for_ic requires a positive collector current")
        upper = min(_VBE_MAX, 0.95 * self.params.var)

        def residual(vbe: float) -> float:
            return self.collector_current(vbe, temperature_k, vbc) - ic

        if residual(upper) < 0.0:
            raise ModelError(
                f"collector current {ic:g} A unreachable below vbe={upper:.2f} V"
            )
        return brentq(residual, 0.0, upper, xtol=_V_TOL)

    def terminal_currents(
        self, vbe_applied: float, temperature_k: float
    ) -> Tuple[float, float]:
        """``(IC, IB)`` for a terminal B-E voltage, collector at ``vbc=0``.

        Solves the series-resistance feedback
        ``vbe_applied = vbe_j + IB*RB + (IC+IB)*RE`` for the internal
        junction voltage, then returns the terminal currents.  This is the
        measurement configuration of the paper's Fig. 5 and is what limits
        the top decade of the curves.
        """
        if vbe_applied <= 0.0:
            return 0.0, 0.0
        p = self.params

        def residual(vbe_j: float) -> float:
            ib = self.base_current(vbe_j, temperature_k)
            ic = self.collector_current(vbe_j, temperature_k)
            return vbe_j + ib * p.rb + (ic + ib) * p.re - vbe_applied

        upper = min(vbe_applied, _VBE_MAX, 0.95 * p.var)
        if residual(upper) <= 0.0:
            vbe_j = upper
        else:
            vbe_j = brentq(residual, 0.0, upper, xtol=_V_TOL)
        return (
            self.collector_current(vbe_j, temperature_k),
            self.base_current(vbe_j, temperature_k),
        )

    # ------------------------------------------------------------------
    # Convenience quantities used by analysis/experiments
    # ------------------------------------------------------------------
    def is_sensitivity_percent_per_kelvin(self, temperature_k: float) -> float:
        """``d(ln IS)/dT`` in %/K (the paper quotes ~20 %/K, section 3)."""
        p = self.params
        return 100.0 * (
            p.xti / temperature_k + p.eg / (K_BOLTZMANN_EV * temperature_k**2)
        )

    def vbe_temperature_slope(
        self, ic: float, temperature_k: float, delta_k: float = 0.05
    ) -> float:
        """Numerical ``dVBE/dT`` at constant ``IC`` [V/K] (~ -2 mV/K)."""
        lo = self.vbe_for_ic(ic, temperature_k - delta_k)
        hi = self.vbe_for_ic(ic, temperature_k + delta_k)
        return (hi - lo) / (2.0 * delta_k)
