"""Gummel sweeps: the raw material of the paper's Fig. 5.

A Gummel plot sweeps the terminal base-emitter voltage with the collector
held at ``VCB = 0`` and records ``IC`` (and ``IB``).  The family of such
curves over temperature — Fig. 5 of the paper, -50 C to +125 C — is the
dataset from which constant-current ``VBE(T)`` characteristics are sliced
for the classical extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ModelError
from .model import GummelPoonModel


@dataclass(frozen=True)
class GummelSweep:
    """One Gummel curve at a fixed temperature.

    ``vbe`` is the applied terminal voltage [V]; ``ic`` and ``ib`` the
    terminal currents [A]; ``temperature_k`` the device temperature.
    """

    temperature_k: float
    vbe: np.ndarray
    ic: np.ndarray
    ib: np.ndarray

    def vbe_at_current(self, ic_target: float) -> float:
        """Interpolate the terminal VBE at which ``ic == ic_target``.

        Interpolation is linear in ``log(IC)`` (exact for an ideal
        exponential), which is how constant-current characteristics are
        sliced out of measured Gummel data in practice.
        """
        if ic_target <= 0.0:
            raise ModelError("target current must be positive")
        positive = self.ic > 0.0
        ic = self.ic[positive]
        vbe = self.vbe[positive]
        if ic.size < 2 or not ic[0] <= ic_target <= ic[-1]:
            raise ModelError(
                f"target {ic_target:g} A outside swept range "
                f"[{ic[0] if ic.size else float('nan'):g}, "
                f"{ic[-1] if ic.size else float('nan'):g}] A"
            )
        return float(np.interp(np.log(ic_target), np.log(ic), vbe))


def gummel_sweep(
    model: GummelPoonModel,
    temperature_k: float,
    vbe_start: float = 0.1,
    vbe_stop: float = 1.3,
    points: int = 121,
) -> GummelSweep:
    """Run a Gummel sweep on ``model`` at one temperature.

    Defaults mirror the paper's Fig. 5 axis (VBE from 0.1 to 1.3 V).
    """
    if points < 2:
        raise ModelError("a sweep needs at least two points")
    if vbe_stop <= vbe_start:
        raise ModelError("vbe_stop must exceed vbe_start")
    vbe = np.linspace(vbe_start, vbe_stop, points)
    ic = np.empty_like(vbe)
    ib = np.empty_like(vbe)
    for i, v in enumerate(vbe):
        ic[i], ib[i] = model.terminal_currents(float(v), temperature_k)
    return GummelSweep(temperature_k=temperature_k, vbe=vbe, ic=ic, ib=ib)


def gummel_family(
    model: GummelPoonModel,
    temperatures_k: Sequence[float],
    vbe_start: float = 0.1,
    vbe_stop: float = 1.3,
    points: int = 121,
) -> list:
    """Gummel sweeps at several temperatures (the full Fig. 5 family)."""
    return [
        gummel_sweep(model, t, vbe_start=vbe_start, vbe_stop=vbe_stop, points=points)
        for t in temperatures_k
    ]
