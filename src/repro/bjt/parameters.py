"""Gummel-Poon parameter sets (the SPICE ``.MODEL`` card contents).

Only the DC/temperature subset relevant to the paper is carried: the
methods under study extract ``EG`` and ``XTI`` from DC ``IC(VBE, T)``
behaviour, so junction capacitances and transit times are out of scope.

The two concrete parameter sets :data:`PAPER_PNP_SMALL` (QA/QIN, 6 um^2)
and :data:`PAPER_PNP_LARGE` (QB/QC, 48 um^2) model the ST BiCMOS PNPs of
the paper's section 4 — the large device is an area-8 copy of the small
one, which is exactly how the paper's emitter-area ratio of 8 is built.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..constants import T_NOMINAL
from ..errors import ModelError


@dataclass(frozen=True)
class BJTParameters:
    """DC Gummel-Poon parameters, SPICE naming.

    Attributes
    ----------
    is_:
        Transport saturation current at ``tnom`` [A].
    bf, br:
        Ideal forward / reverse current gains.
    nf, nr:
        Forward / reverse ideality factors.
    ise, ne:
        Base-emitter leakage saturation current [A] and its ideality.
    vaf, var:
        Forward / reverse Early voltages [V] (``float('inf')`` disables).
        ``VAR`` is the one entering the paper's eq. 13 correction.
    ikf:
        Forward knee current for high-injection roll-off [A]
        (``float('inf')`` disables).
    rb, re, rc:
        Series resistances [ohm].
    eg, xti:
        The temperature parameters under study (paper eq. 1) [eV, -].
    xtb:
        Temperature exponent of beta (SPICE XTB).
    cje, cjc:
        Zero-bias B-E / B-C depletion capacitances [F] (0 = no charge
        storage, the DC-only historic default; the AC subsystem stamps
        these as ``dQ/dV`` at the operating point).
    vje, vjc, mje, mjc:
        Junction built-in potentials [V] and grading coefficients of the
        depletion laws.
    tf:
        Forward transit time [s] — the diffusion capacitance
        ``tf * gm`` in the small-signal model.
    area:
        Emitter area in um^2 — used for relative scaling only.
    tnom:
        Parameter measurement temperature [K].
    polarity:
        ``"npn"`` or ``"pnp"`` (sign convention handled by the circuit
        layer; the device model works in forward-junction convention).
    name:
        Model-card name.
    """

    is_: float = 1.2e-17
    bf: float = 80.0
    br: float = 4.0
    nf: float = 1.0
    nr: float = 1.0
    ise: float = 5.0e-16
    ne: float = 1.8
    vaf: float = 60.0
    var: float = 8.0
    ikf: float = 3.0e-3
    rb: float = 120.0
    re: float = 18.0
    rc: float = 45.0
    # The repo-wide "planted" ground truth: the couple produced by
    # repro.physics.PhysicalSaturationCurrent() defaults via paper eq. 12
    # (EG5 Thurmond-log model, 45 meV narrowing, EN=1.42, Erho=0.10).
    eg: float = 1.1324
    xti: float = 3.4616
    xtb: float = 1.5
    cje: float = 0.0
    cjc: float = 0.0
    vje: float = 0.75
    vjc: float = 0.75
    mje: float = 0.33
    mjc: float = 0.33
    tf: float = 0.0
    area: float = 6.0
    tnom: float = T_NOMINAL
    polarity: str = "pnp"
    name: str = "QPNP"

    def __post_init__(self) -> None:
        if self.is_ <= 0.0:
            raise ModelError("IS must be positive")
        if self.ise < 0.0:
            raise ModelError("ISE must be non-negative")
        if self.bf <= 0.0 or self.br <= 0.0:
            raise ModelError("BF and BR must be positive")
        if self.nf <= 0.0 or self.ne <= 0.0 or self.nr <= 0.0:
            raise ModelError("ideality factors must be positive")
        if self.vaf <= 0.0 or self.var <= 0.0:
            raise ModelError("Early voltages must be positive (use inf to disable)")
        if self.ikf <= 0.0:
            raise ModelError("IKF must be positive (use inf to disable)")
        if min(self.rb, self.re, self.rc) < 0.0:
            raise ModelError("series resistances must be non-negative")
        if self.cje < 0.0 or self.cjc < 0.0 or self.tf < 0.0:
            raise ModelError("junction capacitances and TF must be non-negative")
        if self.vje <= 0.0 or self.vjc <= 0.0:
            raise ModelError("junction potentials must be positive")
        if not 0.0 < self.mje < 1.0 or not 0.0 < self.mjc < 1.0:
            raise ModelError("grading coefficients must be in (0, 1)")
        if not 0.5 <= self.eg <= 2.0:
            raise ModelError(f"EG={self.eg} eV is outside the plausible silicon range")
        if not -2.0 <= self.xti <= 10.0:
            raise ModelError(f"XTI={self.xti} is outside the plausible range")
        if self.area <= 0.0:
            raise ModelError("area must be positive")
        if self.tnom <= 0.0:
            raise ModelError("TNOM must be positive")
        if self.polarity not in ("npn", "pnp"):
            raise ModelError("polarity must be 'npn' or 'pnp'")

    def scaled(self, area_factor: float, name: str = None) -> "BJTParameters":
        """Return an area-scaled copy (SPICE ``area`` instance factor).

        Currents scale up with area, resistances scale down — this is how
        QB (8x) is derived from QA (1x) in the paper's test cell.
        """
        if area_factor <= 0.0:
            raise ModelError("area factor must be positive")
        return replace(
            self,
            is_=self.is_ * area_factor,
            ise=self.ise * area_factor,
            ikf=self.ikf * area_factor,
            rb=self.rb / area_factor,
            re=self.re / area_factor,
            rc=self.rc / area_factor,
            cje=self.cje * area_factor,
            cjc=self.cjc * area_factor,
            area=self.area * area_factor,
            name=name if name is not None else f"{self.name}x{area_factor:g}",
        )

    def with_temperature_parameters(self, eg: float, xti: float) -> "BJTParameters":
        """Copy with a different ``(EG, XTI)`` couple — the model-card swap
        at the heart of the paper's Fig. 8 comparison."""
        return replace(self, eg=eg, xti=xti)

    def model_card(self) -> str:
        """Render as a SPICE ``.MODEL`` line."""
        kind = self.polarity.upper()
        fields: Dict[str, float] = {
            "IS": self.is_,
            "BF": self.bf,
            "BR": self.br,
            "NF": self.nf,
            "NR": self.nr,
            "ISE": self.ise,
            "NE": self.ne,
            "VAF": self.vaf,
            "VAR": self.var,
            "IKF": self.ikf,
            "RB": self.rb,
            "RE": self.re,
            "RC": self.rc,
            "EG": self.eg,
            "XTI": self.xti,
            "XTB": self.xtb,
            "TNOM": self.tnom,
        }
        if self.cje > 0.0:
            fields.update({"CJE": self.cje, "VJE": self.vje, "MJE": self.mje})
        if self.cjc > 0.0:
            fields.update({"CJC": self.cjc, "VJC": self.vjc, "MJC": self.mjc})
        if self.tf > 0.0:
            fields["TF"] = self.tf
        body = " ".join(f"{key}={value:.6g}" for key, value in fields.items())
        return f".MODEL {self.name} {kind} ({body})"


#: QA / QIN of the paper's test cell: 6 um^2 ST BiCMOS substrate PNP.
PAPER_PNP_SMALL = BJTParameters(name="QPNP1X")

#: QB / QC: the 48 um^2 (area 8) device.
PAPER_PNP_LARGE = PAPER_PNP_SMALL.scaled(8.0, name="QPNP8X")
