"""BJT device models.

A SPICE-level Gummel-Poon model of the bipolar transistor: saturation
current temperature law (paper eq. 1), forward ``IC(VBE)`` including
base-width modulation (reverse Early voltage ``VAR``), high-injection
roll-off, series resistances, the parasitic substrate PNP that plagues
the paper's low-voltage test cell, and the matched pair used by the
test structure (paper Fig. 2).
"""

from .parameters import BJTParameters, PAPER_PNP_SMALL, PAPER_PNP_LARGE
from .model import GummelPoonModel
from .gummel_plot import GummelSweep, gummel_sweep
from .substrate import SubstratePNP
from .pair import MatchedPair

__all__ = [
    "BJTParameters",
    "PAPER_PNP_SMALL",
    "PAPER_PNP_LARGE",
    "GummelPoonModel",
    "GummelSweep",
    "gummel_sweep",
    "SubstratePNP",
    "MatchedPair",
]
