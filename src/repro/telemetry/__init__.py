"""Telemetry: scoped trace spans + metrics exporters for the solver stack.

Quick use::

    from repro import telemetry

    tracer = telemetry.install_tracer()          # detail="full"
    session.run(TempSweep(...))
    telemetry.uninstall_tracer()
    telemetry.write_jsonl(tracer, "trace.jsonl")
    telemetry.write_prometheus("metrics.prom")   # process STATS snapshot
    print(telemetry.summary_tree(tracer))

or from the CLI: ``python -m repro fig8 --trace trace.jsonl --metrics
metrics.prom``.

Span / attribute schema — STABLE CONTRACT
=========================================

The span names, nesting, and attribute keys below are the interface the
future job-server metrics endpoint (ROADMAP item 1) will serve; treat
changes as breaking and version them via ``exporters.TRACE_SCHEMA``
(currently ``repro-trace/1``).

Span tree (indentation = nesting; ``[full]`` marks spans only recorded
at ``detail="full"``)::

    plan                    one Session.run dispatch
    └─ solve                one DC operating point (Session.solve_raw)
       └─ dc_solve [full]   one strategy-ladder walk (solve_dc_system)
          └─ newton_solve [full]   one damped-Newton run
             ├─ assembly [full]        full (J, F) assembly leaf
             └─ factorization [full]   fresh LU/splu factorization leaf
    plan (ACSweep)
    └─ ac_sweep             one frequency sweep (ACSystem.solve)
       └─ ac_point [full]   one complex solve leaf
    plan (Transient)
    └─ transient            one run_transient_system call
       └─ transient_step [full]   one attempted step (accepted or not)
    supervised_map          one supervised fan-out batch
                            (repro.parallel.supervised_map)
    retry                   one retry decision of supervised execution;
                            wraps the backoff sleep, nests under
                            whatever supervised scope is open

Attributes by span:

``plan``
    ``kind`` (plan class name, e.g. ``"TempSweep"``), ``analysis``
    description keys from ``plan.describe()`` where cheap.
``solve``
    ``temperature_k``, ``cache`` (``"hit"`` | ``"warm"`` | ``"miss"`` |
    ``"seeded"`` — the caller supplied ``x0``, bypassing the cache),
    and on misses ``cache_gates`` — a dict naming each gate that
    rejected the warm-start candidates (``"no_candidates"``: cache
    size, ``"temperature_band"``: nearest candidate's |dT| in K,
    ``"value_band"``: candidates rejected over override deltas).
``dc_solve``
    ``strategy`` (``"newton"`` | ``"gain-stepping"`` |
    ``"gmin-stepping"`` | ``"source-stepping"``), ``gain_rungs`` /
    ``gmin_rungs`` / ``source_steps`` when a ladder ran, ``converged``.
``newton_solve``
    ``phase`` (``"plain"``, ``"gain[k]"``, ``"transient"``, ...),
    ``converged``, ``iterations``, and on failure ``reason``
    (``"stagnation"`` | ``"max_iterations"`` | ``"singular_jacobian"``).
    Per-iteration records (``Span.iterations``) carry ``i``,
    ``residual``, ``step``, ``damping``, ``kind`` (``"factor"`` |
    ``"reuse"``), and — when the reuse probe declined — ``guard``
    (``"reuse_limit"`` | ``"step_bound"`` | ``"no_contraction"`` |
    ``"solve_failed"``).  Only iterations that take a step write a
    record, so a converged span's ``iterations`` attribute (the
    solver's count, which includes the final convergence check) is one
    more than ``len(iterations)``.
``assembly``
    ``path`` (``"compiled"`` | ``"reference"``).
``factorization``
    ``sparse`` (bool).
``ac_sweep``
    ``points``, ``reused_factor`` (count of solves served by a reused
    factorization).
``ac_point``
    ``frequency_hz``, ``factored`` (bool).
``transient``
    ``method``, ``t_stop_s``; on exit ``accepted_steps``,
    ``rejected_lte``, ``newton_retries``.
``transient_step``
    ``t_s``, ``dt_s``, ``accepted`` (bool), and on rejection ``reason``
    (``"newton"`` | ``"lte"``).
``supervised_map``
    ``items``, ``workers``, ``mode`` (``"pool"`` | ``"serial"``), and on
    exit one count per outcome status seen (``ok`` / ``failed`` /
    ``timed_out`` / ``skipped``).
``retry``
    ``item`` (work-item index), ``attempt`` (the attempt the backoff
    precedes), ``backoff_s``, ``reason`` (failed attempt's exception
    type name, e.g. ``"ConvergenceError"``).
``worker_pid``
    set on spans grafted from a ``parallel_map`` worker.

Counter deltas: every non-leaf span snapshots the process
``repro.spice.stats.STATS`` on entry and stores the non-zero difference
on exit, so sibling deltas sum to their parent's and root deltas sum to
the run's total STATS movement.  Leaf spans skip the snapshot; their
work shows up in the enclosing span.

Prometheus metrics (``prometheus_text``): one
``repro_<counter>_total`` counter per scalar ``SolverStats`` field plus
``repro_dc_strategies_total{strategy="..."}`` — derived from the
dataclass fields, so new counters export automatically.
"""

from .tracer import (
    NULL,
    Span,
    Tracer,
    current_tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
)
from .exporters import (
    TRACE_SCHEMA,
    prometheus_text,
    read_jsonl,
    summary_tree,
    trace_rows,
    trace_summary,
    write_jsonl,
    write_prometheus,
)

__all__ = [
    "NULL",
    "Span",
    "Tracer",
    "TRACE_SCHEMA",
    "current_tracer",
    "install_tracer",
    "prometheus_text",
    "read_jsonl",
    "summary_tree",
    "trace_rows",
    "trace_summary",
    "tracing",
    "uninstall_tracer",
    "write_jsonl",
    "write_prometheus",
]
