"""Scoped trace spans over the solver stack.

One process-wide tracer slot (:data:`ACTIVE`).  When it is empty —
the default — every instrumentation site in the engine reduces to a
single module-attribute read followed by a ``None`` check: no span
objects, no dicts, no clock reads are ever allocated on the untraced
path (the tier-1 wall-time guard in ``tests/telemetry`` pins this).
When a :class:`Tracer` is installed, the engine emits nested
:class:`Span` records — cheap dataclass-style appends — that
reconstruct the full solve tree: ``plan`` → ``solve`` → ``dc_solve`` →
``newton_solve`` → ``assembly``/``factorization`` leaves, with
per-iteration convergence records on every Newton span.

Two detail levels keep the overhead proportional to what the caller
asked for:

* ``detail="plans"`` records only the cheap outer scopes (``plan``,
  ``solve``, ``ac_sweep``, ``transient``) with their counter deltas —
  what ``python -m repro --bench`` installs to attribute counters to
  individual plans without perturbing the measured wall times;
* ``detail="full"`` additionally records ``dc_solve``/``newton_solve``
  spans, per-iteration convergence traces (residual norm, step norm,
  damping, the LU reuse-vs-refactor decision and the guard that made
  it) and ``assembly``/``factorization``/``ac_point``/
  ``transient_step`` leaves — what the CLI's ``--trace FILE`` installs.

Counter deltas: every non-leaf span snapshots the process
:data:`repro.spice.stats.STATS` on entry and stores the (non-zero)
difference on exit, so a span carries exactly the solver work done
inside it and sibling spans' deltas sum to their parent's.

Cross-process merging: a worker's spans are exported with
:meth:`Tracer.export` (plain nested dicts, picklable) and grafted into
the parent's tracer with :meth:`Tracer.graft` — the same
ship-and-merge convention as the Session solved-point cache, so fanned
and serial runs report identical telemetry trees (wall times and the
``worker_pid`` attribute aside).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional


def _stats_snapshot() -> Dict[str, object]:
    # Imported lazily so the telemetry package never participates in the
    # repro.spice import graph (spice modules import telemetry, not the
    # other way around at module scope).
    from ..spice.stats import STATS

    return STATS.as_dict()


def _counter_delta(before: Dict, after: Dict) -> Dict[str, object]:
    """Non-zero counter movement between two ``STATS.as_dict`` snapshots."""
    delta: Dict[str, object] = {}
    for key, value in after.items():
        base = before.get(key, 0)
        if isinstance(value, dict):
            moved = {
                name: count - base.get(name, 0)
                for name, count in value.items()
                if count != base.get(name, 0)
            }
            if moved:
                delta[key] = moved
        elif value != base:
            delta[key] = value - base
    return delta


class Span:
    """One traced scope: name, wall-time window, attributes, children.

    ``iterations`` holds the per-iteration convergence records of a
    ``newton_solve`` span (dicts with ``i``/``residual``/``step``/
    ``damping``/``kind``/``guard`` keys); ``counters`` holds the
    non-zero :data:`~repro.spice.stats.STATS` deltas accumulated while
    the span was open (leaf spans skip the snapshot — their cost is
    visible in the enclosing Newton span's delta).
    """

    __slots__ = (
        "name", "t_start", "t_end", "attrs", "counters", "iterations",
        "children", "_counters_enter",
    )

    def __init__(self, name: str, t_start: float, attrs: Dict[str, object]):
        self.name = name
        self.t_start = t_start
        self.t_end = t_start
        self.attrs = attrs
        self.counters: Dict[str, object] = {}
        self.iterations: List[Dict[str, object]] = []
        self.children: List["Span"] = []
        self._counters_enter: Optional[Dict[str, object]] = None

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        """Picklable/JSON-ready nested snapshot of this span."""
        out = {
            "span": self.name,
            "t_start_s": self.t_start,
            "dur_s": self.duration_s,
            "attrs": dict(self.attrs),
        }
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.iterations:
            out["iterations"] = [dict(record) for record in self.iterations]
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(data["span"], data.get("t_start_s", 0.0), dict(data.get("attrs", {})))
        span.t_end = span.t_start + data.get("dur_s", 0.0)
        span.counters = dict(data.get("counters", {}))
        span.iterations = [dict(r) for r in data.get("iterations", [])]
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        return span


class _NullSpan:
    """Shared no-op context manager for untraced scopes (a singleton, so
    the tracer-off path allocates nothing)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


#: The singleton no-op scope: ``with (NULL if trc is None else trc.span(...)):``.
NULL = _NullSpan()


class Tracer:
    """Collects a forest of :class:`Span` trees for one traced run."""

    def __init__(
        self,
        detail: str = "full",
        clock: Optional[Callable[[], float]] = None,
    ):
        if detail not in ("full", "plans"):
            raise ValueError(f"unknown tracer detail {detail!r}")
        self.detail = detail
        self.clock = clock if clock is not None else time.perf_counter
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @property
    def detailed(self) -> bool:
        """True when solver-internal spans and per-iteration records are on."""
        return self.detail == "full"

    # -- recording -----------------------------------------------------
    def begin(self, name: str, **attrs) -> Span:
        """Open a span (with a counter snapshot) and make it current."""
        span = Span(name, self.clock(), attrs)
        span._counters_enter = _stats_snapshot()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> None:
        """Close a span; tolerant of dropped descendants (an exception
        that aborted a nested scope truncates back to this span)."""
        if span in self._stack:
            del self._stack[self._stack.index(span):]
        span.t_end = self.clock()
        if span._counters_enter is not None:
            span.counters = _counter_delta(span._counters_enter, _stats_snapshot())
            span._counters_enter = None

    @contextmanager
    def span(self, name: str, **attrs):
        """Context-managed :meth:`begin`/:meth:`end` pair."""
        span = self.begin(name, **attrs)
        try:
            yield span
        finally:
            self.end(span)

    def leaf(self, name: str, t_start: float, **attrs) -> None:
        """Record an already-finished leaf scope (no counter snapshot):
        the caller reads ``tracer.clock()`` before the work and hands
        the start time here after it."""
        span = Span(name, t_start, attrs)
        span.t_end = self.clock()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def annotate(self, **attrs) -> None:
        """Attach attributes to the current span (no-op at top level)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    def iteration(self, **record) -> None:
        """Append a per-iteration convergence record to the current span."""
        if self._stack:
            self._stack[-1].iterations.append(record)

    # -- cross-process merge -------------------------------------------
    def export(self) -> List[dict]:
        """The root spans as picklable nested dicts."""
        return [span.to_dict() for span in self.roots]

    def graft(self, exported: List[dict], worker_pid: Optional[int] = None) -> None:
        """Attach a worker's exported spans under the current span (or as
        roots).  Grafted spans keep the worker's clock origin; the
        ``worker_pid`` attribute marks where they came from."""
        for data in exported:
            span = Span.from_dict(data)
            if worker_pid is not None:
                span.attrs.setdefault("worker_pid", worker_pid)
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.roots.append(span)

    def span_count(self) -> int:
        """Total spans recorded (the whole forest)."""

        def count(span: Span) -> int:
            return 1 + sum(count(child) for child in span.children)

        return sum(count(span) for span in self.roots)


#: The installed tracer, or None.  Instrumentation sites read this
#: attribute directly (``_tele.ACTIVE``) so the untraced path costs one
#: attribute load and a None check.
ACTIVE: Optional[Tracer] = None


def install_tracer(tracer: Optional[Tracer] = None, detail: str = "full") -> Tracer:
    """Install (and return) a tracer as the process-wide active one."""
    global ACTIVE
    if tracer is None:
        tracer = Tracer(detail=detail)
    ACTIVE = tracer
    return tracer


def uninstall_tracer() -> Optional[Tracer]:
    """Clear the active tracer; returns the one that was installed."""
    global ACTIVE
    tracer, ACTIVE = ACTIVE, None
    return tracer


def current_tracer() -> Optional[Tracer]:
    """The active tracer, or None."""
    return ACTIVE


@contextmanager
def tracing(detail: str = "full", clock: Optional[Callable[[], float]] = None):
    """Install a fresh tracer for the block, restoring the previous one
    on exit (the worker-capture primitive — nesting is what lets a
    serial ``parallel_map`` fallback capture spans exactly like a real
    worker process would)."""
    global ACTIVE
    previous = ACTIVE
    tracer = Tracer(detail=detail, clock=clock)
    ACTIVE = tracer
    try:
        yield tracer
    finally:
        ACTIVE = previous
