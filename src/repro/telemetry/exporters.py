"""Exporters over a traced run: JSONL spans, Prometheus text metrics,
and a human-readable summary tree.

All three read the same substrate — :class:`~.tracer.Tracer` span
forests and :class:`~repro.spice.stats.SolverStats` snapshots — and
none of them is ever on a hot path, so they favour explicitness over
speed.  The JSONL and Prometheus shapes are part of the telemetry
contract documented in :mod:`repro.telemetry` (the future job-server
metrics endpoint serves exactly these).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .tracer import Span, Tracer

#: Schema tag stamped on the first line of every trace file.
TRACE_SCHEMA = "repro-trace/1"

#: Prometheus metric name prefix.
METRIC_PREFIX = "repro"

#: Help strings for the scalar counters (field-generic fallback below
#: keeps a newly added counter exporting even before it is described
#: here — the same no-silent-drift rule as ``SolverStats`` itself).
_METRIC_HELP = {
    "newton_solves": "Completed Newton runs (one per DC solve attempt / transient step).",
    "iterations": "Newton iterations (full Jacobian assembly + linear solve each).",
    "factorizations": "Fresh LU/splu factorizations.",
    "lu_reuses": "Iterations advanced on a stale (reused) factorization.",
    "residual_evaluations": "Residual-only assemblies (line-search and reuse probes).",
    "compiled_assemblies": "Full (J, F) assemblies through the compiled fast path.",
    "reference_assemblies": "Full (J, F) assemblies through the reference path.",
    "sparse_factorizations": "Factorizations routed to scipy.sparse splu.",
    "group_evals": "Vectorized device-group evaluation passes.",
    "grouped_device_evals": "Devices evaluated through the grouped path.",
    "sparse_assemblies": "Assemblies that returned a scipy.sparse Jacobian.",
    "ac_solves": "Complex linear solves of the AC subsystem (one per frequency).",
    "ac_factorizations": "Complex G + jwC factorizations.",
    "ac_factor_reuses": "AC solves served by a reused factorization.",
    "op_cache_hits": "Session solved-point cache: exact hits.",
    "op_cache_warm_starts": "Session solved-point cache: warm-started solves.",
    "op_cache_misses": "Session solved-point cache: cold solves.",
    "session_plans": "Analysis plans executed through Session.run.",
    "op_store_loads": "Persistent store: files loaded into a session cache.",
    "op_store_points_loaded": "Persistent store: solved points loaded.",
    "op_store_flushes": "Persistent store: flushes that wrote new points.",
    "op_store_points_written": "Persistent store: solved points written.",
    "op_store_corrupt_records": "Persistent store: unreadable records/files skipped.",
    "serve_jobs_submitted": "Service: jobs accepted onto the queue.",
    "serve_jobs_rejected": "Service: submissions rejected before any solve.",
    "serve_jobs_completed": "Service: jobs finished successfully.",
    "serve_jobs_failed": "Service: jobs that terminally failed.",
}


def _stats_dict(stats=None) -> Dict[str, object]:
    if stats is None:
        from ..spice.stats import STATS

        stats = STATS
    return stats if isinstance(stats, dict) else stats.as_dict()


def _escape_label(value: object) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def prometheus_text(stats=None, build_info: Optional[Dict[str, object]] = None) -> str:
    """The counter snapshot in the Prometheus text exposition format.

    One ``repro_<counter>_total`` counter per scalar
    :class:`~repro.spice.stats.SolverStats` field, plus the DC strategy
    histogram as a labelled ``repro_dc_strategies_total`` family.  The
    set of metrics is derived from the stats fields themselves, so a
    counter added to ``SolverStats`` lands here automatically.

    ``build_info`` (e.g. :func:`repro.benchreg.build_info`: git SHA,
    machine, python/numpy/scipy versions, cpu count) is rendered as the
    conventional constant-1 ``repro_build_info`` gauge whose labels
    carry the provenance, so scraped counters are attributable to the
    code and numeric stack that produced them.
    """
    lines: List[str] = []
    if build_info:
        metric = f"{METRIC_PREFIX}_build_info"
        labels = ",".join(
            f'{key}="{_escape_label(value)}"'
            for key, value in sorted(build_info.items())
        )
        lines.append(
            f"# HELP {metric} Build/host provenance (constant 1; the labels "
            "carry the data)."
        )
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{{{labels}}} 1")
    for name, value in _stats_dict(stats).items():
        if isinstance(value, dict):
            metric = f"{METRIC_PREFIX}_dc_{name}_total"
            lines.append(f"# HELP {metric} Successful DC solves by strategy.")
            lines.append(f"# TYPE {metric} counter")
            for label, count in sorted(value.items()):
                lines.append(f'{metric}{{strategy="{label}"}} {count}')
            continue
        metric = f"{METRIC_PREFIX}_{name}_total"
        help_text = _METRIC_HELP.get(name, f"Solver counter {name}.")
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    return "\n".join(lines) + "\n"


def write_prometheus(
    path, stats=None, build_info: Optional[Dict[str, object]] = None
) -> Path:
    """Write :func:`prometheus_text` to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(stats, build_info=build_info))
    return path


# ----------------------------------------------------------------------
# JSONL trace export
# ----------------------------------------------------------------------

def _flatten(span: Span, parent: Optional[int], rows: List[dict]) -> None:
    row = {
        "id": len(rows),
        "parent": parent,
        "span": span.name,
        "t_start_s": round(span.t_start, 9),
        "dur_s": round(span.duration_s, 9),
        "attrs": dict(span.attrs),
    }
    if span.counters:
        row["counters"] = dict(span.counters)
    if span.iterations:
        row["iterations"] = [dict(record) for record in span.iterations]
    rows.append(row)
    own_id = row["id"]
    for child in span.children:
        _flatten(child, own_id, rows)


def trace_rows(source: Union[Tracer, List[Span]]) -> List[dict]:
    """The span forest flattened to JSON-ready rows with parent ids
    (depth-first, so a child always follows its parent)."""
    spans = source.roots if isinstance(source, Tracer) else list(source)
    rows: List[dict] = []
    for span in spans:
        _flatten(span, None, rows)
    return rows


def write_jsonl(source: Union[Tracer, List[Span]], path) -> Path:
    """Write the trace as JSONL: a schema header line, then one line per
    span (``id``/``parent`` reconstruct the tree).  Returns the path."""
    rows = trace_rows(source)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        handle.write(json.dumps({"schema": TRACE_SCHEMA, "spans": len(rows)}) + "\n")
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def read_jsonl(path) -> List[dict]:
    """Read a trace file back as its span rows (header verified)."""
    lines = Path(path).read_text().splitlines()
    if not lines:
        return []
    header = json.loads(lines[0])
    if header.get("schema") != TRACE_SCHEMA:
        raise ValueError(f"not a {TRACE_SCHEMA} file: {path}")
    return [json.loads(line) for line in lines[1:]]


# ----------------------------------------------------------------------
# Human-readable summary
# ----------------------------------------------------------------------

#: Attributes worth showing on a summary line, in display order.
_SUMMARY_ATTRS = (
    "kind", "strategy", "cache", "phase", "temperature_k", "frequency_hz",
    "converged", "iterations", "accepted", "reason", "gain_rungs",
    "gmin_rungs", "source_steps", "points", "worker_pid",
)


def _format_attrs(attrs: Dict[str, object]) -> str:
    parts = []
    for key in _SUMMARY_ATTRS:
        if key in attrs:
            value = attrs[key]
            if isinstance(value, float):
                value = f"{value:g}"
            parts.append(f"{key}={value}")
    return " ".join(parts)


def _summary_lines(span: Span, prefix: str, is_last: bool, lines: List[str],
                   top: bool) -> None:
    connector = "" if top else ("└─ " if is_last else "├─ ")
    attrs = _format_attrs(span.attrs)
    label = f"{span.name}" + (f" [{attrs}]" if attrs else "")
    detail = f" ({span.duration_s * 1e3:.2f} ms"
    if span.iterations:
        detail += f", {len(span.iterations)} iterations"
    detail += ")"
    lines.append(prefix + connector + label + detail)
    child_prefix = prefix if top else prefix + ("   " if is_last else "│  ")
    for index, child in enumerate(span.children):
        _summary_lines(child, child_prefix, index == len(span.children) - 1,
                       lines, top=False)


def summary_tree(source: Union[Tracer, List[Span]]) -> str:
    """The span forest rendered as an indented tree with durations."""
    spans = source.roots if isinstance(source, Tracer) else list(source)
    lines: List[str] = []
    for span in spans:
        _summary_lines(span, "", True, lines, top=True)
    return "\n".join(lines)


def trace_summary(source: Union[Tracer, List[Span]]) -> dict:
    """Compact JSON-ready digest of a trace for ``--bench`` rows.

    One entry per root span (normally the ``plan`` spans of a traced
    experiment), carrying its wall time and counter deltas — which is
    what gives a shared-session experiment per-plan counter attribution
    instead of one blended total.
    """
    spans = source.roots if isinstance(source, Tracer) else list(source)
    roots = []
    for span in spans:
        entry = {
            "span": span.name,
            "wall_s": round(span.duration_s, 6),
        }
        for key in ("kind", "strategy", "cache", "worker_pid"):
            if key in span.attrs:
                entry[key] = span.attrs[key]
        if span.counters:
            entry["counters"] = dict(span.counters)
        roots.append(entry)
    total = (
        source.span_count()
        if isinstance(source, Tracer)
        else len(trace_rows(spans))
    )
    return {"spans": total, "roots": roots}
