"""Campaign-index schema: entry shape, provenance, and the gate table.

The index (``benchmarks/index.json``) is a schema-versioned, append-only
record of benchmark campaigns.  Each entry is one ``--bench`` run:

.. code-block:: json

    {
      "schema": "repro-bench-index/1",
      "entries": [
        {
          "id": "c0003",
          "date": "2026-08-07",
          "recorded_at": "2026-08-07T12:00:00Z",
          "label": "pr8",
          "pr": 8,
          "command": "python -m repro --bench fig8 startup_transient",
          "notes": "",
          "source": null,
          "git_sha": "ad4646e...",
          "host": {"machine": "x86_64", "python": "3.12.3", "numpy": "2.1.0",
                   "scipy": "1.14.1", "cpus": 4, "platform": "Linux-...",
                   "fingerprint": "machine=x86_64|python=3.12.3|..."},
          "rows": [{"experiment": "fig8", "wall_s": 0.08, "factorizations": 0,
                    "...": "every --bench counter, plus trace_summary"}]
        }
      ]
    }

``entries`` is append-only and chronologically ordered; ``id`` is
assigned at record time (``c0001``, ``c0002``...).  ``source`` cites the
legacy ``BENCH_*.json`` snapshot an entry was migrated from (``null``
for natively recorded campaigns).  The host ``fingerprint`` is the
solver-relevant identity — machine/python/numpy/scipy/cpu-count, *not*
the kernel build — because those are what move deterministic counter
trajectories; baseline resolution prefers same-fingerprint entries.

Gate table
----------

Counters are deterministic on a fixed host (the repo's standing 1-CPU
CI caveat: wall clocks there lie, counters do not), so counter metrics
are **hard gates**: any worsening against the baseline fails
``--bench-check``.  Wall times are **advisory**: classified against a
relative tolerance band but never fatal.  Everything else numeric is
**informational** — classified and reported, never gating.
"""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import BenchRegError

#: Schema tag stamped on every index file.
INDEX_SCHEMA = "repro-bench-index/1"

#: Default on-disk home of the campaign index.
DEFAULT_INDEX_PATH = Path("benchmarks") / "index.json"

#: Hard-gated counter metrics and the direction that counts as *better*.
#: A candidate worsening any of these against the baseline fails the
#: check.  ``strategies.<name>`` rows gate the DC strategy ladder: a
#: solve that needs gain/gmin/source stepping where the baseline ran
#: plain Newton is a real robustness regression, not noise.
HARD_GATES: Dict[str, str] = {
    "newton_solves": "lower",
    "factorizations": "lower",
    "sparse_factorizations": "lower",
    # Jacobian format conversions into splu: the CSC end-to-end
    # pipeline keeps this at zero, so ANY increment is a regression
    # (someone re-densified or re-formatted a matrix per iteration).
    "sparse_conversions": "lower",
    "ac_factorizations": "lower",
    "op_cache_hits": "higher",
    "op_cache_warm_starts": "higher",
    "op_cache_misses": "lower",
    # Persistent-store integrity: any unreadable record is data loss
    # somewhere upstream (a torn write, a bad merge), so increments gate.
    "op_store_corrupt_records": "lower",
    "strategies.gain-stepping": "lower",
    "strategies.gmin-stepping": "lower",
    "strategies.source-stepping": "lower",
    "retries": "lower",
    "timeouts": "lower",
    "worker_failures": "lower",
    "serial_fallbacks": "lower",
}

#: Advisory metrics: classified against a tolerance band, never fatal
#: (wall clocks on shared CI hosts are noise; the counters above are
#: the trustworthy signal).
ADVISORY_GATES: Dict[str, str] = {
    "wall_s": "lower",
}

#: Display direction for informational metrics that are unambiguously
#: better when higher; every other informational metric defaults to
#: "lower" purely for improved/regressed labelling.
_HIGHER_IS_BETTER_INFO = frozenset(
    {"lu_reuses", "ac_factor_reuses", "op_cache_hits", "op_cache_warm_starts"}
)

#: Row keys that are not metrics.
_NON_METRIC_KEYS = frozenset({"experiment", "leg", "trace_summary"})


def metric_severity(metric: str) -> str:
    """``"hard"``, ``"advisory"`` or ``"info"`` for a flattened metric."""
    if metric in HARD_GATES:
        return "hard"
    if metric in ADVISORY_GATES:
        return "advisory"
    return "info"


def metric_direction(metric: str) -> str:
    """Which way is *better* for a flattened metric name."""
    if metric in HARD_GATES:
        return HARD_GATES[metric]
    if metric in ADVISORY_GATES:
        return ADVISORY_GATES[metric]
    base = metric.split(".", 1)[-1]
    return "higher" if base in _HIGHER_IS_BETTER_INFO else "lower"


def flatten_metrics(row: Mapping[str, object]) -> Dict[str, float]:
    """A bench row's numeric metrics as a flat name → value mapping.

    The ``strategies`` histogram flattens to ``strategies.<name>``;
    identity keys and the ``trace_summary`` digest are skipped.
    """
    out: Dict[str, float] = {}
    for key, value in row.items():
        if key in _NON_METRIC_KEYS:
            continue
        if key == "strategies" and isinstance(value, Mapping):
            for name, count in value.items():
                out[f"strategies.{name}"] = count
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        out[key] = value
    return out


# ----------------------------------------------------------------------
# Provenance
# ----------------------------------------------------------------------

def host_fingerprint() -> Dict[str, object]:
    """The current host's solver-relevant identity.

    ``fingerprint`` deliberately excludes the kernel build string
    (``platform`` is kept for display only): counter trajectories move
    with the BLAS/numpy/scipy stack and the core count, not with kernel
    point releases, so that is what "same host" means for baseline
    resolution.
    """
    import platform as _platform

    import numpy
    import scipy

    info: Dict[str, object] = {
        "machine": _platform.machine(),
        "python": _platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "cpus": os.cpu_count() or 1,
        "platform": _platform.platform(),
    }
    info["fingerprint"] = "|".join(
        f"{key}={info[key]}" for key in ("machine", "python", "numpy", "scipy", "cpus")
    )
    return info


def git_sha(cwd: Optional[os.PathLike] = None) -> str:
    """The current commit SHA, best-effort: ``"unknown"`` outside a git
    work tree (or when git itself is unavailable)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def build_info(
    host: Optional[Mapping[str, object]] = None, sha: Optional[str] = None
) -> Dict[str, object]:
    """Flat provenance labels for the ``repro_build_info`` metric (and
    the once-per-run ``--bench`` provenance line)."""
    host = dict(host_fingerprint() if host is None else host)
    labels = {
        key: host[key]
        for key in ("machine", "python", "numpy", "scipy", "cpus")
        if key in host
    }
    labels["git_sha"] = git_sha() if sha is None else sha
    return labels


# ----------------------------------------------------------------------
# Index shape
# ----------------------------------------------------------------------

def new_index() -> Dict[str, object]:
    """An empty, valid campaign index."""
    return {"schema": INDEX_SCHEMA, "entries": []}


def next_entry_id(index: Mapping[str, object]) -> str:
    """Sequential id for the next appended entry (``c0001``, ...).

    Derived from the highest existing id rather than the list length so
    ids stay unique even if an entry is ever pruned by hand.
    """
    highest = 0
    for entry in index["entries"]:
        raw = str(entry.get("id", ""))
        if raw.startswith("c") and raw[1:].isdigit():
            highest = max(highest, int(raw[1:]))
    return f"c{highest + 1:04d}"


def validate_entry(entry: object, where: str = "entry") -> Dict[str, object]:
    """Shape-check one campaign entry, returning it."""
    if not isinstance(entry, dict):
        raise BenchRegError(f"{where}: not a mapping")
    for key in ("id", "date", "host", "rows"):
        if key not in entry:
            raise BenchRegError(f"{where}: missing required key {key!r}")
    host = entry["host"]
    if not isinstance(host, dict) or "fingerprint" not in host:
        raise BenchRegError(f"{where}: host must be a mapping with a 'fingerprint'")
    rows = entry["rows"]
    if not isinstance(rows, list):
        raise BenchRegError(f"{where}: rows must be a list")
    for position, row in enumerate(rows):
        if not isinstance(row, dict) or "experiment" not in row:
            raise BenchRegError(
                f"{where}: rows[{position}] must be a mapping with an 'experiment'"
            )
    return entry


def validate_index(data: object, where: str = "index") -> Dict[str, object]:
    """Shape-check a whole index document, returning it."""
    if not isinstance(data, dict):
        raise BenchRegError(f"{where}: not a mapping")
    if data.get("schema") != INDEX_SCHEMA:
        raise BenchRegError(
            f"{where}: schema is {data.get('schema')!r}, expected {INDEX_SCHEMA!r}"
        )
    entries = data.get("entries")
    if not isinstance(entries, list):
        raise BenchRegError(f"{where}: entries must be a list")
    seen: set = set()
    for position, entry in enumerate(entries):
        validate_entry(entry, where=f"{where}: entries[{position}]")
        if entry["id"] in seen:
            raise BenchRegError(f"{where}: duplicate entry id {entry['id']!r}")
        seen.add(entry["id"])
    return data


def load_index(path) -> Dict[str, object]:
    """Read and validate the index at ``path``."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise BenchRegError(f"no campaign index at {path}") from None
    except json.JSONDecodeError as exc:
        raise BenchRegError(f"campaign index {path} is not valid JSON: {exc}") from None
    return validate_index(data, where=str(path))


def save_index(index: Mapping[str, object], path) -> Path:
    """Validate and write the index to ``path`` (pretty-printed, stable
    key order — the file is committed, so diffs must be reviewable)."""
    validate_index(index)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(index, indent=2, sort_keys=True) + "\n")
    return path


def iter_default_rows(
    entry: Mapping[str, object],
) -> Iterable[Tuple[str, Mapping[str, object]]]:
    """The comparable (experiment, row) pairs of an entry: its default
    legs.  Alternate legs (forced grouping, scalar fallback, cache
    seeding experiments) are trajectory colour, not baselines."""
    for row in entry["rows"]:
        leg = row.get("leg")
        if leg in (None, "", "default"):
            yield row["experiment"], row


def default_row(entry: Mapping[str, object], experiment: str):
    """The default-leg row for one experiment, or ``None``."""
    for name, row in iter_default_rows(entry):
        if name == experiment:
            return row
    return None
