"""Campaign recorder: append one ``--bench`` run to the index.

A recorded campaign is a *claim about the code*: these counters and
wall times are what this git SHA does on this host.  Two rules keep the
claim honest:

* **Provenance rides every entry** — recording date (injectable clock),
  git SHA (best-effort), and the host fingerprint — so a later
  ``--bench-check`` can prefer baselines whose counters were produced
  by the same numeric stack.
* **A perturbed run can never become a baseline**: recording (and
  gating) refuses outright while a :mod:`repro.faultinject` plan is
  armed, because injected retries/crashes bend the very counters the
  gates trust.
"""

from __future__ import annotations

from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional

from ..errors import BenchRegError
from . import schema


def ensure_unperturbed(action: str = "record") -> None:
    """Refuse to ``action`` a campaign while fault injection is armed.

    Consults :func:`repro.faultinject.active_spec`, so both the
    ``REPRO_FAULTS`` environment spec and a programmatically installed
    plan are caught.
    """
    from .. import faultinject

    spec = faultinject.active_spec()
    if spec is not None:
        raise BenchRegError(
            f"refusing to {action} a benchmark campaign: fault injection is "
            f"armed (spec {spec!r}). A perturbed run must never become a "
            "baseline — unset REPRO_FAULTS (or uninstall the fault plan) "
            "and re-run."
        )


def make_entry(
    rows: List[Mapping[str, object]],
    *,
    entry_id: str,
    command: str = "",
    label: str = "",
    notes: str = "",
    pr: Optional[int] = None,
    source: Optional[str] = None,
    clock: Optional[Callable[[], float]] = None,
    host: Optional[Mapping[str, object]] = None,
    sha: Optional[str] = None,
) -> Dict[str, object]:
    """Build one schema-valid campaign entry from ``--bench`` rows.

    ``clock`` returns epoch seconds (defaults to the wall clock); tests
    inject it for byte-stable entries.  ``host``/``sha`` override the
    live provenance probes the same way.
    """
    if clock is None:
        import time

        clock = time.time
    stamp = datetime.fromtimestamp(clock(), tz=timezone.utc)
    entry = {
        "id": entry_id,
        "date": stamp.strftime("%Y-%m-%d"),
        "recorded_at": stamp.strftime("%Y-%m-%dT%H:%M:%SZ"),
        "label": label,
        "pr": pr,
        "command": command,
        "notes": notes,
        "source": source,
        "git_sha": schema.git_sha() if sha is None else sha,
        "host": dict(schema.host_fingerprint() if host is None else host),
        "rows": [dict(row) for row in rows],
    }
    return schema.validate_entry(entry)


def record_campaign(
    index_path,
    rows: List[Mapping[str, object]],
    *,
    command: str = "",
    label: str = "",
    notes: str = "",
    pr: Optional[int] = None,
    source: Optional[str] = None,
    clock: Optional[Callable[[], float]] = None,
    host: Optional[Mapping[str, object]] = None,
    sha: Optional[str] = None,
) -> Dict[str, object]:
    """Append a campaign entry to the index at ``index_path``.

    Creates a fresh index when the file does not exist yet.  Returns
    the recorded entry (its ``id`` identifies it as a future
    ``--baseline`` ref).  Raises :class:`BenchRegError` when fault
    injection is armed or the rows are empty.
    """
    ensure_unperturbed("record")
    if not rows:
        raise BenchRegError("refusing to record an empty campaign (no bench rows)")
    index_path = Path(index_path)
    index = schema.load_index(index_path) if index_path.exists() else schema.new_index()
    entry = make_entry(
        rows,
        entry_id=schema.next_entry_id(index),
        command=command,
        label=label,
        notes=notes,
        pr=pr,
        source=source,
        clock=clock,
        host=host,
        sha=sha,
    )
    index["entries"].append(entry)
    schema.save_index(index, index_path)
    return entry
