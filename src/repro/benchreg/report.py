"""Trend reporter: the campaign index rendered as a markdown trajectory.

``--bench-report`` writes ``benchmarks/TREND.md``: one campaign table
(provenance of every recorded entry), then one section per experiment
with each metric's value trajectory across campaigns
(``1059 → 1059 → 132``-style rows — the textual sparkline), annotated
with where the metric first appeared, where it last moved, and a
saturation note once it has been flat for :data:`SATURATION_N`
consecutive campaigns (a saturated counter is a candidate for
*retiring* from close watch, exactly the radslice-style suite-evolution
signal).

Rendering is a pure function of the index — no clock, no host probes —
so the report is byte-stable for a given index and golden-testable.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from . import schema

#: A metric flat for this many consecutive campaigns is annotated as
#: saturated in the trend tables.
SATURATION_N = 3

#: Placeholder for "this campaign did not run this experiment".
_GAP = "·"


def _format(value: Optional[float]) -> str:
    if value is None:
        return _GAP
    if isinstance(value, float) and not value.is_integer():
        return f"{value:g}"
    return str(int(value))


def _metric_order(metrics) -> List[str]:
    """wall_s first, hard gates next, the rest alphabetically."""

    def key(name: str) -> Tuple[int, str]:
        if name == "wall_s":
            return (0, name)
        if name in schema.HARD_GATES:
            return (1, name)
        return (2, name)

    return sorted(metrics, key=key)


def _annotate(
    ids: List[str], values: List[Optional[float]], flat_n: int
) -> str:
    """first-seen / last-changed / saturation notes for one trajectory."""
    present = [
        (campaign, value) for campaign, value in zip(ids, values) if value is not None
    ]
    notes: List[str] = []
    first_id = present[0][0]
    if first_id != ids[0]:
        notes.append(f"first @{first_id}")
    changes = [
        campaign
        for (_, previous), (campaign, current) in zip(present, present[1:])
        if current != previous
    ]
    if changes:
        notes.append(f"last changed @{changes[-1]}")
    # Trailing run of equal present values (the saturation window).
    run = 1
    while run < len(present) and present[-1 - run][1] == present[-1][1]:
        run += 1
    if run >= flat_n:
        notes.append(f"flat ×{run} (saturated)")
    return ", ".join(notes) or "—"


def render_trend(index: Mapping[str, object], flat_n: int = SATURATION_N) -> str:
    """The whole index as a markdown trend report (see module doc)."""
    schema.validate_index(index)
    entries = list(index["entries"])
    lines = ["# Benchmark trend report", ""]
    if not entries:
        lines.append("No campaigns recorded yet (`--bench-record` appends one).")
        return "\n".join(lines) + "\n"
    latest = entries[-1]
    lines += [
        f"{len(entries)} campaign(s) in a `{index['schema']}` index · "
        f"latest {latest['id']} ({latest['date']}"
        + (f", {latest['label']}" if latest.get("label") else "")
        + ")",
        "",
        "Counters marked *hard* gate `--bench-check`; *advisory* metrics "
        f"classify against a tolerance band but never fail; metrics flat for "
        f"{flat_n}+ campaigns carry a saturation note.  Regenerate with "
        "`PYTHONPATH=src python -m repro --bench-report`.",
        "",
        "## Campaigns",
        "",
        "| id | date | label | pr | git | host | source |",
        "|---|---|---|---|---|---|---|",
    ]
    for entry in entries:
        sha = str(entry.get("git_sha", "unknown"))
        fingerprint = str(entry["host"].get("fingerprint", "?"))
        if len(fingerprint) > 48:
            fingerprint = fingerprint[:47] + "…"
        fingerprint = fingerprint.replace("|", "\\|")
        lines.append(
            "| {id} | {date} | {label} | {pr} | {git} | {host} | {source} |".format(
                id=entry["id"],
                date=entry["date"],
                label=entry.get("label") or "—",
                pr=entry.get("pr") if entry.get("pr") is not None else "—",
                git=sha[:12],
                host=fingerprint,
                source=entry.get("source") or "—",
            )
        )
    ids = [str(entry["id"]) for entry in entries]
    header_arrows = " → ".join(ids)
    # Experiments in first-appearance order; per experiment, one
    # trajectory row per metric that is ever non-zero (all-zero counters
    # would drown the signal in noise rows).
    experiments: List[str] = []
    for entry in entries:
        for name, _row in schema.iter_default_rows(entry):
            if name not in experiments:
                experiments.append(name)
    for experiment in experiments:
        rows = [schema.default_row(entry, experiment) for entry in entries]
        metric_values: Dict[str, List[Optional[float]]] = {}
        for row in rows:
            flat = schema.flatten_metrics(row) if row is not None else {}
            for metric in flat:
                metric_values.setdefault(metric, [])
        for metric, values in metric_values.items():
            for row in rows:
                flat = schema.flatten_metrics(row) if row is not None else {}
                values.append(flat.get(metric))
        lines += [
            "",
            f"## {experiment}",
            "",
            f"| metric | gate | {header_arrows} | notes |",
            "|---|---|---|---|",
        ]
        for metric in _metric_order(metric_values):
            values = metric_values[metric]
            if not any(value for value in values):
                continue
            severity = schema.metric_severity(metric)
            trajectory = " → ".join(_format(value) for value in values)
            lines.append(
                f"| {metric} | {severity} | {trajectory} | "
                f"{_annotate(ids, values, flat_n)} |"
            )
    return "\n".join(lines) + "\n"


def write_trend(index: Mapping[str, object], path, flat_n: int = SATURATION_N) -> Path:
    """Render :func:`render_trend` to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_trend(index, flat_n=flat_n))
    return path
