"""Migrate the hand-written ``BENCH_*.json`` snapshots into the index.

The repo's first two committed trajectory points (PR 4's three-leg
evaluator comparison and PR 5's session-cache cold/cached pair) predate
the campaign index.  This helper lifts them into schema-versioned
entries so ``--bench-check`` has a real baseline on day one:

.. code-block:: bash

    PYTHONPATH=src python -m repro.benchreg.migrate benchmarks/

The original snapshot files are left untouched; each migrated entry
cites its snapshot in ``source`` as provenance.  Legacy snapshots carry
only a prose host description, so their host fingerprint is
``legacy:<description>`` — it can never equal a live fingerprint, which
means default (same-host) baseline resolution will prefer natively
recorded entries and only fall back to migrated ones explicitly or on
a fresh host, with the fallback named in the resolution note.

Migration is deterministic (dates come from the snapshots, not a
clock): running it twice produces byte-identical indexes.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List

from ..errors import BenchRegError
from . import schema

#: Legacy snapshot files in trajectory order, with the labels their
#: PRs are known by.
LEGACY_SNAPSHOTS = (
    ("BENCH_2026-07-27.json", "pr4-evaluator-legs"),
    ("BENCH_2026-07-27_session.json", "pr5-session-cache"),
)


def _legacy_host(description: str) -> Dict[str, object]:
    return {
        "legacy": description,
        "fingerprint": f"legacy:{description}",
    }


def migrate_snapshot(path, entry_id: str, label: str) -> Dict[str, object]:
    """One legacy ``BENCH_*.json`` snapshot as a campaign entry."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise BenchRegError(f"legacy snapshot not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise BenchRegError(f"legacy snapshot {path} is not JSON: {exc}") from None
    for key in ("date", "entries"):
        if key not in data:
            raise BenchRegError(f"legacy snapshot {path} has no {key!r} field")
    entry = {
        "id": entry_id,
        "date": data["date"],
        "recorded_at": f"{data['date']}T00:00:00Z",
        "label": label,
        "pr": data.get("pr"),
        "command": data.get("command", ""),
        "notes": data.get("notes", ""),
        "source": path.name,
        "git_sha": "unknown",
        "host": _legacy_host(str(data.get("host", "unknown legacy host"))),
        "rows": [dict(row) for row in data["entries"]],
    }
    return schema.validate_entry(entry, where=str(path))


def migrate_legacy(benchmarks_dir) -> Dict[str, object]:
    """Build a fresh index from every known legacy snapshot present in
    ``benchmarks_dir`` (trajectory order).  Raises when none exist."""
    benchmarks_dir = Path(benchmarks_dir)
    index = schema.new_index()
    for filename, label in LEGACY_SNAPSHOTS:
        path = benchmarks_dir / filename
        if not path.exists():
            continue
        index["entries"].append(
            migrate_snapshot(path, schema.next_entry_id(index), label)
        )
    if not index["entries"]:
        raise BenchRegError(
            f"no legacy BENCH_*.json snapshots found in {benchmarks_dir} "
            f"(looked for {', '.join(name for name, _ in LEGACY_SNAPSHOTS)})"
        )
    return schema.validate_index(index)


def main(argv: List[str] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    force = "--force" in argv
    if force:
        argv.remove("--force")
    benchmarks_dir = Path(argv[0]) if argv else Path("benchmarks")
    index_path = benchmarks_dir / "index.json"
    if index_path.exists() and not force:
        print(
            f"{index_path} already exists — migration seeds a FRESH index; "
            "pass --force to overwrite",
            file=sys.stderr,
        )
        return 1
    try:
        index = migrate_legacy(benchmarks_dir)
    except BenchRegError as exc:
        print(f"migrate: {exc}", file=sys.stderr)
        return 1
    schema.save_index(index, index_path)
    for entry in index["entries"]:
        print(
            f"migrated {entry['source']} -> {entry['id']} "
            f"({entry['date']}, {len(entry['rows'])} rows)"
        )
    print(f"index written -> {index_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
