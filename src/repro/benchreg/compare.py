"""Baseline resolution and the regression gate.

``--bench-check`` compares a candidate run (live ``--bench`` rows, or a
recorded entry) against a baseline entry resolved from the index:

* an explicit ``--baseline REF`` matches an entry id (``c0003``), a
  label (``pr5``), a date (latest entry of ``2026-07-27``), or the
  literal ``latest``;
* by default, the **latest same-host entry** (host fingerprint match,
  see :func:`~.schema.host_fingerprint`) — falling back to the latest
  entry of any host, with the fallback named in the resolution note so
  a cross-stack comparison is never silent.

Each metric delta is classified ``improved`` / ``stable`` /
``regressed`` / ``new-metric``.  Counter metrics in
:data:`~.schema.HARD_GATES` compare exactly (tolerance zero — they are
deterministic on a fixed host) and a regression fails the check; the
advisory wall-time metrics classify against a relative tolerance band
and never fail.  Metrics the baseline row lacks are ``new-metric``:
informational by construction, so a schema that *grows* new counters
(the normal direction of travel) never breaks old baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import BenchRegError
from . import schema

#: Default relative tolerance band for advisory (wall-time) metrics.
DEFAULT_TOLERANCE = 0.25


@dataclass(frozen=True)
class Delta:
    """One classified metric movement between baseline and candidate."""

    experiment: str
    metric: str
    severity: str  # "hard" | "advisory" | "info"
    direction: str  # "lower" | "higher" (which way is better)
    baseline: Optional[float]  # None <=> new metric
    candidate: float
    status: str  # "improved" | "stable" | "regressed" | "new-metric"

    @property
    def gate_failure(self) -> bool:
        return self.severity == "hard" and self.status == "regressed"

    def describe(self) -> str:
        if self.baseline is None:
            return (
                f"{self.experiment}.{self.metric}: (new metric) -> "
                f"{self.candidate:g}"
            )
        arrow = f"{self.baseline:g} -> {self.candidate:g}"
        return f"{self.experiment}.{self.metric}: {arrow} [{self.status}]"

    def as_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "metric": self.metric,
            "severity": self.severity,
            "direction": self.direction,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "status": self.status,
        }


@dataclass
class Comparison:
    """The full result of gating a candidate run against a baseline."""

    baseline_id: str
    resolution: str  # how the baseline was chosen
    tolerance: float
    deltas: List[Delta] = field(default_factory=list)
    #: Experiments the baseline has (default leg) but the candidate run
    #: did not execute — informational, a partial run is a valid check.
    uncompared: List[str] = field(default_factory=list)

    @property
    def hard_failures(self) -> List[Delta]:
        return [delta for delta in self.deltas if delta.gate_failure]

    @property
    def ok(self) -> bool:
        return not self.hard_failures

    def counts(self) -> Dict[str, int]:
        out = {"improved": 0, "stable": 0, "regressed": 0, "new-metric": 0}
        for delta in self.deltas:
            out[delta.status] += 1
        return out


def resolve_baseline(
    index: Mapping[str, object],
    ref: Optional[str] = None,
    host: Optional[Mapping[str, object]] = None,
) -> Tuple[Dict[str, object], str]:
    """Pick the baseline entry: ``(entry, how-it-was-chosen)``.

    Raises :class:`BenchRegError` on an empty index or an unknown ref.
    """
    entries = list(index["entries"])
    if not entries:
        raise BenchRegError(
            "cannot resolve a baseline: the campaign index is empty "
            "(record one with --bench-record, or migrate the legacy "
            "BENCH_*.json snapshots with python -m repro.benchreg.migrate)"
        )
    if ref is not None and ref != "latest":
        for entry in reversed(entries):
            if ref in (entry.get("id"), entry.get("label"), entry.get("date")):
                return entry, f"explicit ref {ref!r}"
        known = ", ".join(str(entry["id"]) for entry in entries)
        raise BenchRegError(
            f"baseline ref {ref!r} matches no entry id/label/date "
            f"(known ids: {known})"
        )
    if ref == "latest":
        return entries[-1], "explicit ref 'latest'"
    fingerprint = (host or schema.host_fingerprint()).get("fingerprint")
    for entry in reversed(entries):
        if entry["host"].get("fingerprint") == fingerprint:
            return entry, f"latest same-host entry ({entry['id']})"
    return entries[-1], (
        f"latest entry ({entries[-1]['id']}) — NO same-host entry found; "
        "counter gates may reflect a different numeric stack"
    )


def classify(
    baseline: Optional[float],
    candidate: float,
    direction: str,
    tolerance: float,
) -> str:
    """Classify one metric movement (see the module docstring)."""
    if baseline is None:
        return "new-metric"
    delta = candidate - baseline
    if direction == "higher":
        delta = -delta
    # delta > 0 now always means "worse".
    if tolerance > 0:
        span = abs(baseline) * tolerance
        if abs(candidate - baseline) <= span:
            return "stable"
    elif delta == 0:
        return "stable"
    return "regressed" if delta > 0 else "improved"


def compare_rows(
    baseline_entry: Mapping[str, object],
    rows: List[Mapping[str, object]],
    *,
    resolution: str = "",
    tolerance: float = DEFAULT_TOLERANCE,
) -> Comparison:
    """Gate candidate ``--bench`` rows against one baseline entry.

    Only default-leg baseline rows participate (forced-grouping /
    scalar legs are trajectory colour, not baselines).  Candidate
    experiments absent from the baseline produce ``new-metric`` deltas
    throughout; baseline experiments the candidate did not run are
    listed as ``uncompared``.
    """
    comparison = Comparison(
        baseline_id=str(baseline_entry.get("id", "?")),
        resolution=resolution,
        tolerance=tolerance,
    )
    compared = set()
    for row in rows:
        experiment = row["experiment"]
        compared.add(experiment)
        base_row = schema.default_row(baseline_entry, experiment)
        base_metrics = (
            schema.flatten_metrics(base_row) if base_row is not None else {}
        )
        for metric, value in sorted(schema.flatten_metrics(row).items()):
            severity = schema.metric_severity(metric)
            direction = schema.metric_direction(metric)
            base_value = base_metrics.get(metric)
            # A counter the baseline never recorded is a new metric even
            # when the baseline row exists (schema growth, e.g. PR-4
            # rows predate the session-cache counters).
            status = classify(
                base_value,
                value,
                direction,
                tolerance if severity == "advisory" else 0.0,
            )
            comparison.deltas.append(
                Delta(
                    experiment=experiment,
                    metric=metric,
                    severity=severity,
                    direction=direction,
                    baseline=base_value,
                    candidate=value,
                    status=status,
                )
            )
    for experiment, _row in schema.iter_default_rows(baseline_entry):
        if experiment not in compared:
            comparison.uncompared.append(experiment)
    return comparison


def render_check(comparison: Comparison, verbose: bool = False) -> str:
    """Human-readable gate verdict with a named-metric diff.

    Always names every hard-gate regression; ``verbose`` adds the full
    classified delta list.
    """
    lines = [
        f"bench-check: baseline {comparison.baseline_id} "
        f"({comparison.resolution}), wall tolerance "
        f"±{comparison.tolerance:.0%}",
    ]
    counts = comparison.counts()
    lines.append(
        "bench-check: "
        + "  ".join(f"{status}={counts[status]}" for status in sorted(counts))
    )
    interesting = [
        delta
        for delta in comparison.deltas
        if verbose
        or delta.gate_failure
        or (delta.status in ("improved", "regressed") and delta.severity != "info")
    ]
    for delta in interesting:
        tag = {"hard": "GATE", "advisory": "advisory", "info": "info"}[delta.severity]
        lines.append(f"  [{tag}] {delta.describe()}")
    for experiment in comparison.uncompared:
        lines.append(f"  (baseline experiment {experiment} not in this run)")
    failures = comparison.hard_failures
    if failures:
        named = ", ".join(f"{d.experiment}.{d.metric}" for d in failures)
        lines.append(
            f"bench-check: FAIL — {len(failures)} hard-gate regression(s): {named}"
        )
    else:
        lines.append("bench-check: PASS — no hard-gate regressions")
    return "\n".join(lines)


def check_against_index(
    index: Mapping[str, object],
    rows: List[Mapping[str, object]],
    *,
    ref: Optional[str] = None,
    host: Optional[Mapping[str, object]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Comparison:
    """Resolve a baseline from ``index`` and gate ``rows`` against it."""
    baseline, resolution = resolve_baseline(index, ref=ref, host=host)
    return compare_rows(
        baseline, rows, resolution=resolution, tolerance=tolerance
    )
