"""Benchmark-campaign governance: recorded ``--bench`` runs, counter
gates, and trend reports.

The package turns ``--bench`` from a print statement into a governed
trajectory with three verbs (all wired into the CLI):

* **record** (``--bench-record``) — append the run's bench rows to the
  schema-versioned campaign index ``benchmarks/index.json``, with full
  provenance: date (injectable clock), git SHA (best-effort), host
  fingerprint (machine / python / numpy / scipy / cpu count), and the
  per-plan ``trace_summary`` attribution each row already carries.
* **check** (``--bench-check [--baseline REF]``) — resolve a baseline
  from the index (latest same-host entry by default) and gate the
  current run against it: counter metrics are *hard gates* (exact,
  deterministic — the trustworthy signal on the 1-CPU CI container),
  wall times are *advisory* within a configurable tolerance band, and
  any hard-gate regression exits non-zero with a named-metric diff.
* **report** (``--bench-report``) — render the whole index as a
  markdown trajectory (``benchmarks/TREND.md``) with per-metric
  sparkline-style rows, first-seen/last-changed annotations, and
  saturation notes.

Recording or gating refuses outright while a :mod:`repro.faultinject`
plan is armed — a perturbed run must never become a baseline.

The index schema (``repro-bench-index/1``) and the hard/advisory gate
table are documented in :mod:`repro.benchreg.schema`;
:mod:`repro.benchreg.migrate` lifts the pre-index ``BENCH_*.json``
snapshots into entries (cited as ``source`` provenance).
"""

from ..errors import BenchRegError
from .compare import (
    DEFAULT_TOLERANCE,
    Comparison,
    Delta,
    check_against_index,
    classify,
    compare_rows,
    render_check,
    resolve_baseline,
)
from .record import ensure_unperturbed, make_entry, record_campaign
from .report import SATURATION_N, render_trend, write_trend
from .schema import (
    ADVISORY_GATES,
    DEFAULT_INDEX_PATH,
    HARD_GATES,
    INDEX_SCHEMA,
    build_info,
    flatten_metrics,
    git_sha,
    host_fingerprint,
    load_index,
    new_index,
    save_index,
    validate_index,
)

__all__ = [
    "ADVISORY_GATES",
    "BenchRegError",
    "Comparison",
    "DEFAULT_INDEX_PATH",
    "DEFAULT_TOLERANCE",
    "Delta",
    "HARD_GATES",
    "INDEX_SCHEMA",
    "SATURATION_N",
    "build_info",
    "check_against_index",
    "classify",
    "compare_rows",
    "ensure_unperturbed",
    "flatten_metrics",
    "git_sha",
    "host_fingerprint",
    "load_index",
    "make_entry",
    "new_index",
    "record_campaign",
    "render_check",
    "render_trend",
    "resolve_baseline",
    "save_index",
    "validate_index",
    "write_trend",
]
