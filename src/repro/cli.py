"""Command-line experiment runner: ``python -m repro [options] [experiment ...]``.

With no experiment names, runs every registered experiment and prints
the summary followed by each rendered section.  ``--list`` prints the
registered experiment names (one per line) and exits; ``--export DIR``
also writes each regenerated table as ``DIR/<experiment>.csv``.

``--bench`` times each named experiment and prints its wall time plus
the solver-statistics snapshot (Newton iterations, factorizations, LU
reuses, assembly-path counters, vectorized device-group counters,
sparse-assembly counts, AC solve/factorization-reuse counters, the
Session solved-point-cache counters — exact hits / warm starts /
misses — and plan counts, DC strategies) both human-readably and
as a machine-scrapable ``BENCH {json}`` line, so perf trajectories can
be collected from plain CI logs.  Bench rows carry a ``trace_summary``
with per-plan wall times and counter deltas (a plans-level tracer runs
during each timed experiment), so experiments sharing one session no
longer blend their work into a single total.  ``--workers N`` fans
independent work (experiments, sweep chains, Monte-Carlo chips) over N
processes (0 = all cores); results are identical to a serial run.

Bench runs print a one-line provenance stamp (git SHA, host
fingerprint) and can be *governed* through the campaign index
(``benchmarks/index.json``, schema ``repro-bench-index/1``):
``--bench-record`` appends the run's rows as a dated campaign entry
with full provenance; ``--bench-check`` resolves a baseline from the
index (latest same-host entry by default, or ``--baseline REF`` by
id/label/date/``latest``) and gates the run against it — counter
metrics are hard gates (exact), wall times advisory within
``--bench-tolerance`` (default 0.25 relative) — exiting non-zero on
any hard-gate regression with a named-metric diff; ``--bench-report``
renders the index as a markdown trajectory to ``benchmarks/TREND.md``
(standalone, or composed with a bench run).  ``--bench-index PATH``
points all three at a different index file.  Recording and gating
refuse to run while ``REPRO_FAULTS`` is set: a perturbed run must
never become a baseline.

``--trace FILE`` records the full telemetry span tree of the run
(nested solve spans with per-iteration Newton convergence records) as
JSONL; ``--metrics FILE`` writes the solver-counter snapshot in the
Prometheus text exposition format.  Both compose with ``--bench``.

``--retries N`` runs each experiment under a supervised
:class:`~repro.resilience.RunPolicy` (N retries of transient failures,
failures recorded instead of aborting the batch): a crashed experiment
is reported with its attempt count and captured exception while the
rest of the run completes, and the resilience counters (``retries``,
``timeouts``, ``worker_failures``, ``serial_fallbacks``) appear in the
bench rows' ``resil=`` segment and the Prometheus export.  Composes
with the ``REPRO_FAULTS`` deterministic fault-injection spec (see
:mod:`repro.faultinject`), which only arms under a policy.

``--serve`` starts the simulation service instead of running
experiments: an HTTP job server (``POST /jobs`` validated by the
PlanError boundary before any solve, ``GET /jobs/<id>[/result]``,
``GET /metrics``, ``GET /healthz``, ``POST /shutdown``) over a bounded
Session pool, with ``--cache-dir DIR`` attaching the persistent
solved-point store shared across jobs, sessions and server restarts.
``--port``/``--host`` set the bind address (default
``127.0.0.1:8347`` — loopback only, no authentication);
``--serve-workers N`` sets the job worker threads.  See
:mod:`repro.serve` and ``python -m repro.serve.client`` for the
matching client.

Exit status is non-zero if any shape check fails or any experiment
failed terminally, and 2 for usage errors (unknown experiment names
are reported together with the registry).
"""

from __future__ import annotations

import json
import sys
import time
from typing import List, Optional

from . import telemetry
from .experiments import EXPERIMENTS, render_result, render_summary, run_experiment
from .experiments.export import write_csv
from .spice.stats import STATS, SolverStats

#: Exit status for usage errors (unknown experiment, bad flags).
USAGE_ERROR = 2


def _pop_value_flag(argv: List[str], flag: str, what: str = "an argument"):
    """Remove ``flag VALUE`` from argv, returning VALUE (or None/error)."""
    if flag not in argv:
        return None, None
    index = argv.index(flag)
    try:
        value = argv[index + 1]
    except IndexError:
        return None, f"{flag} requires {what}"
    del argv[index : index + 2]
    return value, None


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("-h", "--help"):
        print(__doc__)
        print("Known experiments:", ", ".join(sorted(EXPERIMENTS)))
        return 0
    if "--list" in argv:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if "--serve" in argv:
        argv.remove("--serve")
        host_raw, error = _pop_value_flag(argv, "--host", "a bind address")
        if error:
            print(error, file=sys.stderr)
            return USAGE_ERROR
        port_raw, error = _pop_value_flag(argv, "--port", "a port number")
        if error:
            print(error, file=sys.stderr)
            return USAGE_ERROR
        cache_dir, error = _pop_value_flag(argv, "--cache-dir", "a directory")
        if error:
            print(error, file=sys.stderr)
            return USAGE_ERROR
        serve_workers_raw, error = _pop_value_flag(
            argv, "--serve-workers", "a worker-thread count"
        )
        if error:
            print(error, file=sys.stderr)
            return USAGE_ERROR
        if argv:
            print(
                "--serve takes no experiment names; unexpected: "
                + " ".join(argv),
                file=sys.stderr,
            )
            return USAGE_ERROR
        try:
            port = int(port_raw) if port_raw is not None else None
            serve_workers = (
                int(serve_workers_raw) if serve_workers_raw is not None else 1
            )
        except ValueError as exc:
            print(f"--serve: {exc}", file=sys.stderr)
            return USAGE_ERROR
        from .serve import server as serve_server

        try:
            serve_server.serve(
                host=host_raw or serve_server.DEFAULT_HOST,
                port=serve_server.DEFAULT_PORT if port is None else port,
                cache_dir=cache_dir,
                workers=serve_workers,
            )
        except OSError as exc:
            print(f"--serve: {exc}", file=sys.stderr)
            return 1
        return 0
    bench = "--bench" in argv
    if bench:
        argv.remove("--bench")
    bench_record = "--bench-record" in argv
    if bench_record:
        argv.remove("--bench-record")
    bench_check = "--bench-check" in argv
    if bench_check:
        argv.remove("--bench-check")
    bench_report = "--bench-report" in argv
    if bench_report:
        argv.remove("--bench-report")
    baseline_ref, error = _pop_value_flag(argv, "--baseline", "a baseline ref")
    if error:
        print(error, file=sys.stderr)
        return USAGE_ERROR
    bench_index_raw, error = _pop_value_flag(argv, "--bench-index", "an index path")
    if error:
        print(error, file=sys.stderr)
        return USAGE_ERROR
    tolerance_raw, error = _pop_value_flag(
        argv, "--bench-tolerance", "a relative tolerance"
    )
    if error:
        print(error, file=sys.stderr)
        return USAGE_ERROR
    tolerance = None
    if tolerance_raw is not None:
        try:
            tolerance = float(tolerance_raw)
        except ValueError:
            print(
                f"--bench-tolerance needs a number, got {tolerance_raw!r}",
                file=sys.stderr,
            )
            return USAGE_ERROR
        if tolerance < 0:
            print("--bench-tolerance must be >= 0", file=sys.stderr)
            return USAGE_ERROR
    if baseline_ref is not None and not bench_check:
        print("--baseline only makes sense with --bench-check", file=sys.stderr)
        return USAGE_ERROR
    # Recording or gating implies a bench run; both refuse perturbed runs.
    if bench_record or bench_check:
        bench = True
        from . import benchreg
        from .errors import BenchRegError

        try:
            benchreg.ensure_unperturbed("record" if bench_record else "gate")
        except BenchRegError as exc:
            print(str(exc), file=sys.stderr)
            return USAGE_ERROR
    if bench_report and not bench:
        # Standalone report mode: no experiments run, just render the
        # trend from the existing index.
        if argv:
            print(
                "--bench-report is standalone (no experiment names) or "
                "composed with --bench",
                file=sys.stderr,
            )
            return USAGE_ERROR
        from pathlib import Path

        from . import benchreg
        from .errors import BenchRegError

        index_path = Path(bench_index_raw or benchreg.DEFAULT_INDEX_PATH)
        try:
            index = benchreg.load_index(index_path)
            trend_path = benchreg.write_trend(index, index_path.parent / "TREND.md")
        except BenchRegError as exc:
            print(f"bench-report: {exc}", file=sys.stderr)
            return 1
        print(f"bench-report: trend written -> {trend_path}")
        return 0
    workers_raw, error = _pop_value_flag(argv, "--workers", "a worker count")
    if error:
        print(error, file=sys.stderr)
        return USAGE_ERROR
    max_workers = None
    if workers_raw is not None:
        try:
            max_workers = int(workers_raw)
        except ValueError:
            print(f"--workers needs an integer, got {workers_raw!r}", file=sys.stderr)
            return USAGE_ERROR
    export_dir, error = _pop_value_flag(argv, "--export", "a directory argument")
    if error:
        print(error, file=sys.stderr)
        return USAGE_ERROR
    trace_path, error = _pop_value_flag(argv, "--trace", "a file path")
    if error:
        print(error, file=sys.stderr)
        return USAGE_ERROR
    metrics_path, error = _pop_value_flag(argv, "--metrics", "a file path")
    if error:
        print(error, file=sys.stderr)
        return USAGE_ERROR
    retries_raw, error = _pop_value_flag(argv, "--retries", "a retry count")
    if error:
        print(error, file=sys.stderr)
        return USAGE_ERROR
    policy = None
    if retries_raw is not None:
        try:
            retries = int(retries_raw)
        except ValueError:
            print(f"--retries needs an integer, got {retries_raw!r}", file=sys.stderr)
            return USAGE_ERROR
        from .resilience import RunPolicy

        try:
            policy = RunPolicy(max_retries=retries, on_failure="record")
        except Exception as exc:
            print(f"--retries: {exc}", file=sys.stderr)
            return USAGE_ERROR
    names = argv or sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment{'s' if len(unknown) > 1 else ''}: "
            + ", ".join(unknown),
            file=sys.stderr,
        )
        print("registered experiments:", file=sys.stderr)
        for name in sorted(EXPERIMENTS):
            print(f"  {name}", file=sys.stderr)
        return USAGE_ERROR
    results = {}
    failures = {}
    bench_rows = []
    trace_spans = []
    metrics_stats = None
    bench_host = None
    bench_sha = None
    if bench:
        from . import benchreg

        # One provenance stamp per bench run: which code, which numeric
        # stack.  The same identity rides --bench-record entries and the
        # repro_build_info labels of --metrics.
        bench_host = benchreg.host_fingerprint()
        bench_sha = benchreg.git_sha()
        print(
            f"bench provenance: git={bench_sha[:12]} "
            f"host={bench_host['fingerprint']}"
        )

    def run_supervised(name: str, position: int):
        """Run one experiment under the --retries policy, filing the
        result or the failure record."""
        from .resilience import supervised_call

        outcome = supervised_call(
            lambda: run_experiment(name), index=position, policy=policy
        )
        if outcome.ok:
            results[name] = outcome.value
        else:
            failures[name] = outcome

    if bench:
        # Timed one-by-one, fully in-process: worker processes would
        # increment their own STATS singletons and the parent snapshot
        # would under-report, so intra-experiment fan-out (REPRO_WORKERS)
        # is forced off for the duration of the timed runs.
        import os

        saved_workers = os.environ.get("REPRO_WORKERS")
        os.environ["REPRO_WORKERS"] = "1"
        # A plans-level tracer per timed run attributes counters to the
        # individual plan spans (shared-session experiments used to
        # blend their plans into one blended STATS row); --trace
        # upgrades it to full detail, which perturbs the measured walls
        # but buys the whole solve tree.
        detail = "full" if trace_path else "plans"
        metrics_stats = SolverStats()
        try:
            for position, name in enumerate(names):
                STATS.reset()
                tracer = telemetry.install_tracer(detail=detail)
                t0 = time.perf_counter()
                try:
                    if policy is not None:
                        run_supervised(name, position)
                    else:
                        results[name] = run_experiment(name)
                finally:
                    telemetry.uninstall_tracer()
                wall = time.perf_counter() - t0
                bench_rows.append(
                    {
                        "experiment": name,
                        "wall_s": round(wall, 4),
                        **STATS.as_dict(),
                        "trace_summary": telemetry.trace_summary(tracer),
                    }
                )
                metrics_stats.merge(STATS)
                trace_spans.extend(tracer.roots)
        finally:
            if saved_workers is None:
                del os.environ["REPRO_WORKERS"]
            else:
                os.environ["REPRO_WORKERS"] = saved_workers
    else:
        tracer = telemetry.install_tracer(detail="full") if trace_path else None
        try:
            if max_workers is not None and max_workers != 1 and len(names) > 1:
                from .experiments.registry import run_experiments

                batch = run_experiments(names, max_workers=max_workers, policy=policy)
                if policy is None:
                    results = batch
                else:
                    for name, outcome in batch.items():
                        if outcome is not None and outcome.ok:
                            results[name] = outcome.value
                        else:
                            failures[name] = outcome
            elif policy is not None:
                for position, name in enumerate(names):
                    run_supervised(name, position)
            else:
                for name in names:
                    results[name] = run_experiment(name)
        finally:
            if tracer is not None:
                telemetry.uninstall_tracer()
                trace_spans.extend(tracer.roots)
    for name in names:
        if name in results:
            print(render_result(results[name]))
        else:
            outcome = failures.get(name)
            detail_msg = (
                f"{outcome.error_type}: {outcome.error} "
                f"(after {outcome.attempts} attempt(s))"
                if outcome is not None
                else "skipped"
            )
            print(f"experiment {name} FAILED: {detail_msg}")
    if export_dir is not None:
        for name in names:
            if name not in results:
                continue
            path = write_csv(results[name], export_dir)
            print(f"exported {name} -> {path}")
    for row in bench_rows:
        strategies = ", ".join(
            f"{key}={value}" for key, value in sorted(row["strategies"].items())
        )
        print(
            f"bench {row['experiment']}: wall={row['wall_s']:.3f} s  "
            f"iterations={row['iterations']}  "
            f"factorizations={row['factorizations']}  "
            f"lu_reuses={row['lu_reuses']}  "
            f"residual_evals={row['residual_evaluations']}  "
            f"assemblies={row['compiled_assemblies']}c/"
            f"{row['reference_assemblies']}r  "
            f"sparse={row['sparse_assemblies']}a/"
            f"{row['sparse_factorizations']}f/"
            f"{row['sparse_conversions']}cv  "
            f"groups={row['group_evals']}ev/"
            f"{row['grouped_device_evals']}dev  "
            f"ac={row['ac_solves']}s/{row['ac_factorizations']}f/"
            f"{row['ac_factor_reuses']}r  "
            f"cache={row['op_cache_hits']}h/"
            f"{row['op_cache_warm_starts']}w/"
            f"{row['op_cache_misses']}m  "
            f"plans={row['session_plans']}  "
            f"resil={row['retries']}r/{row['timeouts']}t/"
            f"{row['worker_failures']}wf/{row['serial_fallbacks']}sf  "
            f"strategies: {strategies or '-'}"
        )
        print("BENCH " + json.dumps(row, sort_keys=True))
    gate_failed = False
    if bench and (bench_record or bench_check or bench_report):
        from pathlib import Path

        from . import benchreg
        from .errors import BenchRegError

        index_path = Path(bench_index_raw or benchreg.DEFAULT_INDEX_PATH)
        try:
            # Resolve the baseline BEFORE recording, so a freshly
            # recorded campaign is never compared against itself.
            baseline = resolution = None
            if bench_check:
                index = benchreg.load_index(index_path)
                baseline, resolution = benchreg.resolve_baseline(
                    index, ref=baseline_ref, host=bench_host
                )
            if bench_record:
                if failures:
                    raise BenchRegError(
                        "refusing to record a campaign with failed "
                        "experiments: " + ", ".join(sorted(failures))
                    )
                entry = benchreg.record_campaign(
                    index_path,
                    bench_rows,
                    command="python -m repro --bench " + " ".join(names),
                    sha=bench_sha,
                    host=bench_host,
                )
                print(
                    f"bench-record: campaign {entry['id']} ({entry['date']}) "
                    f"-> {index_path}"
                )
            if bench_check:
                comparison = benchreg.compare_rows(
                    baseline,
                    bench_rows,
                    resolution=resolution,
                    tolerance=(
                        benchreg.DEFAULT_TOLERANCE
                        if tolerance is None
                        else tolerance
                    ),
                )
                print(benchreg.render_check(comparison))
                gate_failed = not comparison.ok
            if bench_report:
                trend_path = benchreg.write_trend(
                    benchreg.load_index(index_path),
                    index_path.parent / "TREND.md",
                )
                print(f"bench-report: trend written -> {trend_path}")
        except BenchRegError as exc:
            print(f"bench governance: {exc}", file=sys.stderr)
            return 1
    if trace_path is not None:
        path = telemetry.write_jsonl(trace_spans, trace_path)
        print(f"trace written -> {path} ({len(telemetry.trace_rows(trace_spans))} spans)")
    if metrics_path is not None:
        from . import benchreg

        path = telemetry.write_prometheus(
            metrics_path,
            metrics_stats,
            build_info=benchreg.build_info(bench_host, bench_sha),
        )
        print(f"metrics written -> {path}")
    print(render_summary(results))
    if failures:
        print(
            f"{len(failures)} experiment(s) failed terminally: "
            + ", ".join(sorted(failures))
        )
        return 1
    if gate_failed:
        return 1
    return 0 if all(result.passed for result in results.values()) else 1


if __name__ == "__main__":
    raise SystemExit(main())
