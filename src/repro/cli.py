"""Command-line experiment runner: ``python -m repro [options] [experiment ...]``.

With no experiment names, runs every registered experiment and prints
the summary followed by each rendered section.  ``--list`` prints the
registered experiment names (one per line) and exits; ``--export DIR``
also writes each regenerated table as ``DIR/<experiment>.csv``.  Exit
status is non-zero if any shape check fails, and 2 for usage errors
(unknown experiment names are reported together with the registry).
"""

from __future__ import annotations

import sys
from typing import List

from .experiments import EXPERIMENTS, render_result, render_summary, run_experiment
from .experiments.export import write_csv

#: Exit status for usage errors (unknown experiment, bad flags).
USAGE_ERROR = 2


def main(argv: List[str] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("-h", "--help"):
        print(__doc__)
        print("Known experiments:", ", ".join(sorted(EXPERIMENTS)))
        return 0
    if "--list" in argv:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    export_dir = None
    if "--export" in argv:
        index = argv.index("--export")
        try:
            export_dir = argv[index + 1]
        except IndexError:
            print("--export requires a directory argument", file=sys.stderr)
            return USAGE_ERROR
        del argv[index : index + 2]
    names = argv or sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment{'s' if len(unknown) > 1 else ''}: "
            + ", ".join(unknown),
            file=sys.stderr,
        )
        print("registered experiments:", file=sys.stderr)
        for name in sorted(EXPERIMENTS):
            print(f"  {name}", file=sys.stderr)
        return USAGE_ERROR
    results = {}
    for name in names:
        results[name] = run_experiment(name)
    for name in names:
        print(render_result(results[name]))
    if export_dir is not None:
        for name in names:
            path = write_csv(results[name], export_dir)
            print(f"exported {name} -> {path}")
    print(render_summary(results))
    return 0 if all(result.passed for result in results.values()) else 1


if __name__ == "__main__":
    raise SystemExit(main())
