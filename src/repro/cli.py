"""Command-line experiment runner: ``python -m repro [options] [experiment ...]``.

With no experiment names, runs every registered experiment and prints
the summary followed by each rendered section.  ``--export DIR`` also
writes each regenerated table as ``DIR/<experiment>.csv``.  Exit status
is non-zero if any shape check fails.
"""

from __future__ import annotations

import sys
from typing import List

from .errors import ReproError
from .experiments import EXPERIMENTS, render_result, render_summary, run_experiment
from .experiments.export import write_csv


def main(argv: List[str] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("-h", "--help"):
        print(__doc__)
        print("Known experiments:", ", ".join(sorted(EXPERIMENTS)))
        return 0
    export_dir = None
    if "--export" in argv:
        index = argv.index("--export")
        try:
            export_dir = argv[index + 1]
        except IndexError:
            raise ReproError("--export requires a directory argument") from None
        del argv[index : index + 2]
    names = argv or sorted(EXPERIMENTS)
    results = {}
    for name in names:
        results[name] = run_experiment(name)
    for name in names:
        print(render_result(results[name]))
    if export_dir is not None:
        for name in names:
            path = write_csv(results[name], export_dir)
            print(f"exported {name} -> {path}")
    print(render_summary(results))
    return 0 if all(result.passed for result in results.values()) else 1


if __name__ == "__main__":
    raise SystemExit(main())
