"""The Fig. 2 bias configuration: the device under test.

Two PNPs QA (1x) and QB (p-times, p > 1) are forced to the same collector
current; the difference of their base-emitter voltages

    dVBE(T) = VBE_A - VBE_B = (kT/q) ln p + (kT/q) ln X(T) + epsilon(T)

is the PTAT thermometer of the method.  ``X(T)`` is the collector-current
ratio product of paper eq. 20 (unity for a perfect external source) and
``epsilon`` collects the cell's non-idealities (amplifier-stage offset,
substrate-leakage imbalance, series drops) — the quantities the
measurement layer injects per sample.

:class:`BiasedPair` is the fast, closed-form evaluation used by the
measurement campaign; the full netlist path goes through
:mod:`repro.circuits.bandgap_cell`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..bjt.pair import MatchedPair
from ..errors import ModelError


@dataclass(frozen=True)
class BiasPairConfig:
    """Bias conditions of the pair measurement.

    Attributes
    ----------
    collector_current_a:
        Collector current forced into QA [A] at the reference
        temperature.  May be temperature dependent via ``current_law``.
    current_law:
        Optional callable ``I(T)`` for both branches; models the on-chip
        bias whose current tracks temperature ("The collector currents
        ICQA and ICQB increase with temperature", section 4).  ``None``
        means an ideal, temperature-flat external source.
    current_ratio_b:
        Static multiplier on QB's current relative to QA's (1.0 = the
        equality RX1/RX2 are meant to enforce).
    vce_headroom:
        Collector-emitter headroom [V] seen by the devices; the paper's
        low-voltage cell runs them "at the limit of the saturation"
        (small headroom), which is what wakes the parasitic substrate
        transistor up.
    """

    collector_current_a: float = 8.9e-6
    current_law: Optional[Callable[[float], float]] = None
    current_ratio_b: float = 1.0
    vce_headroom: float = 0.05

    def __post_init__(self) -> None:
        if self.collector_current_a <= 0.0:
            raise ModelError("bias current must be positive")
        if self.current_ratio_b <= 0.0:
            raise ModelError("current ratio must be positive")


@dataclass
class BiasedPair:
    """A matched pair under a bias configuration, with offset injection."""

    pair: MatchedPair = field(default_factory=MatchedPair)
    config: BiasPairConfig = field(default_factory=BiasPairConfig)
    #: Additive error on the *measured* dVBE [V]: amplifier-stage offset
    #: plus measurement-path series drops (per-sample, see
    #: repro.measurement.samples).
    delta_vbe_offset_v: float = 0.0

    def currents_at(self, temperature_k: float) -> tuple:
        """(I_A, I_B) [A] at temperature."""
        if self.config.current_law is not None:
            base = float(self.config.current_law(temperature_k))
        else:
            base = self.config.collector_current_a
        if base <= 0.0:
            raise ModelError("bias current law returned a non-positive current")
        return base, base * self.config.current_ratio_b

    def true_delta_vbe(self, temperature_k: float) -> float:
        """Junction dVBE [V]: what an ideal voltmeter at the junctions sees."""
        ia, ib = self.currents_at(temperature_k)
        return self.pair.delta_vbe(
            temperature_k,
            ia,
            current_b=ib,
            vce_headroom=self.config.vce_headroom,
        )

    def measured_delta_vbe(self, temperature_k: float) -> float:
        """dVBE as read at the pads [V]: junction value plus the offset."""
        return self.true_delta_vbe(temperature_k) + self.delta_vbe_offset_v

    def vbe_a(self, temperature_k: float) -> float:
        """QA's junction VBE [V] at the configured bias."""
        ia, _ = self.currents_at(temperature_k)
        if self.pair.substrate_a is not None:
            ia = ia - self.pair.substrate_a.leakage_current(
                temperature_k, self.config.vce_headroom
            )
        if ia <= 0.0:
            raise ModelError("substrate leakage exceeds QA bias current")
        return self.pair.qa.vbe_for_ic(ia, temperature_k)

    def vbe_b(self, temperature_k: float) -> float:
        """QB's junction VBE [V] at the configured bias."""
        _, ib = self.currents_at(temperature_k)
        if self.pair.substrate_b is not None:
            ib = ib - self.pair.substrate_b.leakage_current(
                temperature_k, self.config.vce_headroom
            )
        if ib <= 0.0:
            raise ModelError("substrate leakage exceeds QB bias current")
        return self.pair.qb.vbe_for_ic(ib, temperature_k)

    def current_ratio_x(self, t1: float, t2: float) -> float:
        """The paper's eq. 20 ratio ``X`` for temperatures ``t1``/``t2``.

        ``X = (IC1(T1)*IC2(T2)) / (IC1(T2)*IC2(T1))`` where branch 1 is
        QA and branch 2 is QB.  Unity whenever the two branches share the
        same temperature law, regardless of what that law is.
        """
        ia1, ib1 = self.currents_at(t1)
        ia2, ib2 = self.currents_at(t2)
        return (ia1 * ib2) / (ia2 * ib1)


def build_bias_pair_circuit(
    biased: BiasedPair,
    temperature_k: float = 300.15,
) -> "Circuit":
    """The Fig. 2 configuration as a netlist.

    Two external current sources force the (nominally equal) collector
    currents into the diode-connected pair; nodes ``pa``/``pb`` are the
    emitter pads the dVBE voltmeter probes.  Substrate leakage, when the
    pair models it, is diverted from the emitter nodes exactly as in the
    bandgap cell.  The netlist path cross-validates the closed-form
    :class:`BiasedPair` evaluation (see the test suite).
    """
    from ..spice.elements import CurrentSource
    from ..spice.elements.bjt import add_bjt
    from ..spice.netlist import Circuit

    ia, ib = biased.currents_at(temperature_k)
    circuit = Circuit(title="bias pair (paper Fig. 2)")
    circuit.add(CurrentSource("IA", "0", "pa", ia))
    circuit.add(CurrentSource("IB", "0", "pb", ib))
    pair = biased.pair
    add_bjt(circuit, "QA", "0", "0", "pa", pair.qa.params)
    add_bjt(circuit, "QB", "0", "0", "pb", pair.qb.params)
    headroom = biased.config.vce_headroom
    if pair.substrate_a is not None:
        drive_a = pair.substrate_a.saturation_drive(headroom)
        if drive_a > 0.0:
            circuit.add(
                CurrentSource(
                    "ILEAK_QA",
                    "pa",
                    "0",
                    lambda t, d=drive_a: pair.substrate_a.leakage_current(t) * d,
                )
            )
    if pair.substrate_b is not None:
        drive_b = pair.substrate_b.saturation_drive(headroom)
        if drive_b > 0.0:
            circuit.add(
                CurrentSource(
                    "ILEAK_QB",
                    "pb",
                    "0",
                    lambda t, d=drive_b: pair.substrate_b.leakage_current(t) * d,
                )
            )
    return circuit
