"""Sub-1V current-mode bandgap reference (the paper's motivation).

The paper's introduction motivates the whole exercise with references
"operating down to 600 mV" [Banba 1999, Annema 1999, Rincon-Mora 1998]:
at such supply voltages the classic VBE-plus-PTAT stack (>= 1.2 V) is
impossible and errors of tens of meV in the effective ``EG`` are fatal.
The conclusion positions the test structure as the tool "to prototype
the design of more accurate low voltage reference circuit" — this module
is that prototype.

Topology (current-mode, after Banba): the op-amp loop generates

    I_PTAT = dVBE / R1        (the matched pair, as in the test cell)
    I_CTAT = VBE_A / R2       (QA's own junction voltage over R2)

and the output mirrors the summed current into R3:

    VREF = R3 * (I_PTAT + I_CTAT) = (R3/R2) * (VBE_A + (R2/R1) * dVBE)

— the full bandgap voltage scaled by ``R3/R2``, placeable anywhere
below (or above) 1.2 V.  The same parasitic substrate leakage that
bends the test cell's VREF bends this one too, scaled identically, so
the in-situ extracted model card transfers directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bjt.pair import MatchedPair
from ..bjt.parameters import BJTParameters, PAPER_PNP_SMALL
from ..bjt.substrate import SubstratePNP
from ..errors import ConvergenceError, ModelError
from typing import Optional


@dataclass(frozen=True)
class Sub1VConfig:
    """Component values of the current-mode reference.

    Defaults place VREF near 0.66 V (the "down to 600 mV" regime) with
    the same ~9 uA PTAT branch current as the test cell.
    """

    params: BJTParameters = field(default_factory=lambda: PAPER_PNP_SMALL)
    area_ratio: float = 8.0
    #: PTAT resistor: I_PTAT = dVBE / r1 [ohm].
    r1: float = 6.0e3
    #: CTAT resistor: I_CTAT = VBE / r2 [ohm].  R2/R1 ~ 9.3 balances
    #: the ~ -1.66 mV/K VBE slope (at the ~9 uA operating point) against
    #: ln(8)*k/q per unit of PTAT gain.
    r2: float = 55.5e3
    #: Output resistor: VREF = r3 * (I_PTAT + I_CTAT) [ohm].
    r3: float = 31.6e3
    #: Shared resistor tempco (ratios stay flat, as on-die).
    resistor_tc1: float = 1.5e-3
    is_mismatch: float = 1.0
    substrate_unit: Optional[SubstratePNP] = field(
        default_factory=lambda: SubstratePNP(area=1.0)
    )
    substrate_drive: float = 1.0
    #: Transconductance of the (idealised) current mirrors in the
    #: netlist realisation: each branch carries ``gm * v(ctl)`` [S].
    #: Sized so the mirror control voltage sits mid-rail (~0.5 V) at the
    #: ~20 uA total branch current of the defaults.
    mirror_gm: float = 4.0e-5
    #: Open-loop gain of the netlist realisation's error amplifier.
    opamp_gain: float = 1.0e4

    def __post_init__(self) -> None:
        if min(self.r1, self.r2, self.r3) <= 0.0:
            raise ModelError("resistors must be positive")
        if self.area_ratio <= 1.0:
            raise ModelError("area ratio must exceed 1")
        if not 0.0 <= self.substrate_drive <= 1.0:
            raise ModelError("substrate drive must be in [0, 1]")
        if self.mirror_gm <= 0.0:
            raise ModelError("mirror transconductance must be positive")
        if self.opamp_gain <= 0.0:
            raise ModelError("op-amp gain must be positive")

    @property
    def nominal_scale(self) -> float:
        """The ``R3/R2`` output scale factor."""
        return self.r3 / self.r2


@dataclass
class Sub1VBandgap:
    """Closed-form evaluation of the current-mode reference."""

    config: Sub1VConfig = field(default_factory=Sub1VConfig)

    def __post_init__(self) -> None:
        cfg = self.config
        self._pair = MatchedPair(
            base_params=cfg.params,
            area_ratio=cfg.area_ratio,
            is_mismatch=cfg.is_mismatch,
            substrate_a=cfg.substrate_unit,
            substrate_b=(
                None
                if cfg.substrate_unit is None
                else cfg.substrate_unit.scaled(cfg.area_ratio)
            ),
        )

    def _resistance(self, nominal: float, temperature_k: float) -> float:
        cfg = self.config
        return nominal * (1.0 + cfg.resistor_tc1 * (temperature_k - cfg.params.tnom))

    def _leakages(self, temperature_k: float) -> tuple:
        cfg = self.config
        if cfg.substrate_unit is None or cfg.substrate_drive == 0.0:
            return 0.0, 0.0
        unit = cfg.substrate_unit.leakage_current(temperature_k) * cfg.substrate_drive
        return unit, unit * cfg.area_ratio

    def ptat_current(self, temperature_k: float, max_iterations: int = 80) -> float:
        """Solve ``I = dVBE(I)/R1`` by fixed point [A]."""
        cfg = self.config
        r1 = self._resistance(cfg.r1, temperature_k)
        leak_a, leak_b = self._leakages(temperature_k)
        current = max(self._pair.ideal_delta_vbe(temperature_k) / r1, 1e-9)
        for _ in range(max_iterations):
            ia, ib = current - leak_a, current - leak_b
            if ia <= 0.0 or ib <= 0.0:
                raise ModelError("substrate leakage exceeds the PTAT current")
            dvbe = self._pair.qa.vbe_for_ic(ia, temperature_k) - self._pair.qb.vbe_for_ic(
                ib, temperature_k
            )
            updated = dvbe / r1
            if abs(updated - current) < 1e-15:
                return updated
            current = updated
        raise ConvergenceError(
            f"PTAT loop did not converge at {temperature_k:.1f} K"
        )

    def vbe(self, temperature_k: float) -> float:
        """QA's junction voltage at the PTAT operating point [V]."""
        leak_a, _ = self._leakages(temperature_k)
        current = self.ptat_current(temperature_k)
        return self._pair.qa.vbe_for_ic(current - leak_a, temperature_k)

    def vref(self, temperature_k: float) -> float:
        """The sub-1V output: ``R3 * (dVBE/R1 + VBE/R2)`` [V]."""
        cfg = self.config
        r2 = self._resistance(cfg.r2, temperature_k)
        r3 = self._resistance(cfg.r3, temperature_k)
        i_ptat = self.ptat_current(temperature_k)
        i_ctat = self.vbe(temperature_k) / r2
        return r3 * (i_ptat + i_ctat)

    def scaled_to(self, target_vref: float, temperature_k: float = 300.15) -> "Sub1VBandgap":
        """Return a copy with R3 rescaled so VREF(temperature_k) hits
        ``target_vref`` — the one-knob output placement the current-mode
        topology is loved for."""
        if target_vref <= 0.0:
            raise ModelError("target VREF must be positive")
        from dataclasses import replace

        current = self.vref(temperature_k)
        new_r3 = self.config.r3 * target_vref / current
        return Sub1VBandgap(replace(self.config, r3=new_r3))


def build_sub1v_cell(
    config: Optional[Sub1VConfig] = None,
    supply_node: Optional[str] = None,
    amp_output_resistance: float = 0.0,
    rail_high: float = 0.9,
):
    """The current-mode reference as a netlist (Banba topology).

    The PMOS mirror of the original is idealised as three matched VCCS
    devices steered by the error amplifier's output ``vc``: each pushes
    ``mirror_gm * v(vc)`` into branch A (QA + R2), branch B (R1 + QB +
    R2) and the output resistor R3.  The amplifier equalises the branch
    tops, reproducing ``VREF = R3 * (dVBE/R1 + VBE/R2)`` — the
    closed-form law of :class:`Sub1VBandgap` — but now as a solvable
    MNA system with real startup dynamics: with ``supply_node`` wired
    to a ramped VDD the amplifier output window (and hence every branch
    current) is collapsed until the supply comes up.

    Node names: ``vc`` (mirror control), ``na``/``nb`` (branch tops),
    ``nbmid`` (QB emitter below R1), ``vref`` (output).
    """
    from ..spice.elements import CurrentSource, Resistor, VCCS
    from ..spice.elements.bjt import add_bjt
    from ..spice.netlist import Circuit
    from .amplifier import attach_amplifier

    config = config or Sub1VConfig()
    circuit = Circuit(title="sub-1V current-mode reference (Banba topology)")
    tc = config.resistor_tc1
    tnom = config.params.tnom
    gm = config.mirror_gm

    # Idealised mirror: identical currents into both branches + output.
    circuit.add(VCCS("GA", "0", "na", "vc", "0", gm))
    circuit.add(VCCS("GB", "0", "nb", "vc", "0", gm))
    circuit.add(VCCS("GOUT", "0", "vref", "vc", "0", gm))

    # Branch A: unit junction with its CTAT shunt.
    from ..bjt.pair import derive_qb_params

    qb_params = derive_qb_params(config.params, config.area_ratio, config.is_mismatch)
    add_bjt(circuit, "QA", "0", "0", "na", config.params)
    circuit.add(Resistor("R2A", "na", "0", config.r2, tc1=tc, tnom=tnom))

    # Branch B: PTAT resistor over the area-scaled junction, same shunt.
    circuit.add(Resistor("R1", "nb", "nbmid", config.r1, tc1=tc, tnom=tnom))
    add_bjt(circuit, "QB", "0", "0", "nbmid", qb_params)
    circuit.add(Resistor("R2B", "nb", "0", config.r2, tc1=tc, tnom=tnom))

    # Output branch.
    circuit.add(Resistor("R3", "vref", "0", config.r3, tc1=tc, tnom=tnom))

    # Parasitic substrate leakage steals emitter current, as in the
    # test cell (scaled by area for QB).
    if config.substrate_unit is not None and config.substrate_drive > 0.0:
        for dev, node, sub in (
            ("QA", "na", config.substrate_unit),
            ("QB", "nbmid", config.substrate_unit.scaled(config.area_ratio)),
        ):
            def leakage(temperature_k: float, _sub=sub) -> float:
                return _sub.leakage_current(temperature_k) * config.substrate_drive

            circuit.add(CurrentSource(f"ILEAK_{dev}", node, "0", leakage))

    # Error amplifier: increasing vc raises both branch currents and
    # *lowers* v(na) - v(nb), so (+) on branch A closes the loop with
    # negative feedback.
    attach_amplifier(
        circuit,
        "na",
        "nb",
        "vc",
        output_resistance=amp_output_resistance,
        gain=config.opamp_gain,
        rail_low=0.0,
        rail_high=rail_high,
        supply=supply_node,
    )
    return circuit
