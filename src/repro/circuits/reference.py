"""Closed-form behavioural model of the bandgap test cell.

Solves the same loop equations as the netlist in
:mod:`repro.circuits.bandgap_cell`, but by direct fixed-point iteration
on the branch current instead of a full MNA solve:

    I(T) = (dVBE_junction(I, T) + vos_eff(T)) / RB(T)
    VREF(T) = VBE_A(I - I_leak_A, T) + I * RX1(T)

This is ~100x faster than the netlist path and is what the Monte-Carlo
and Fig. 8 sweeps use; an integration test pins the two paths against
each other to sub-mV agreement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..bjt.pair import MatchedPair
from ..errors import ConvergenceError, ModelError
from .bandgap_cell import BandgapCellConfig


@dataclass
class BehaviouralBandgap:
    """Fast evaluation of the cell's VREF(T) and branch current."""

    config: BandgapCellConfig = field(default_factory=BandgapCellConfig)

    def __post_init__(self) -> None:
        cfg = self.config
        self._pair = MatchedPair(
            base_params=cfg.params,
            area_ratio=cfg.area_ratio,
            is_mismatch=cfg.is_mismatch,
            substrate_a=cfg.substrate_unit,
            substrate_b=(
                None
                if cfg.substrate_unit is None
                else cfg.substrate_unit.scaled(cfg.area_ratio)
            ),
        )
        self._trim = cfg.trim()

    # ------------------------------------------------------------------
    def _resistance(self, nominal: float, temperature_k: float) -> float:
        cfg = self.config
        dt = temperature_k - cfg.params.tnom
        return nominal * (1.0 + cfg.resistor_tc1 * dt)

    def _leakages(self, temperature_k: float) -> tuple:
        cfg = self.config
        if cfg.substrate_unit is None or cfg.substrate_drive == 0.0:
            return 0.0, 0.0
        unit = cfg.substrate_unit.leakage_current(temperature_k) * cfg.substrate_drive
        return unit, unit * cfg.area_ratio

    def _finite_gain_offset(self, vref_estimate: float) -> float:
        """The op-amp's finite-gain equilibrium term [V].

        At equilibrium the tanh stage needs a differential input of
        ``(swing/gain) * atanh((vref - center)/swing)``; it enters the
        loop exactly like an offset of the opposite sign.
        """
        cfg = self.config
        center, swing = 2.5, 2.5  # default rails of the cell's op-amp
        arg = max(min((vref_estimate - center) / swing, 0.999), -0.999)
        return -(swing / cfg.opamp_gain) * math.atanh(arg)

    def branch_current(self, temperature_k: float, max_iterations: int = 80,
                       tol_a: float = 1e-15,
                       vref_estimate: float = 1.23) -> float:
        """Solve the loop fixed point for the branch current [A]."""
        cfg = self.config
        rb = self._resistance(cfg.rb, temperature_k)
        vos = self._trim.effective_offset(temperature_k) + self._finite_gain_offset(
            vref_estimate
        )
        leak_a, leak_b = self._leakages(temperature_k)
        # Ideal seed: I = VT ln p / RB.
        current = max(self._pair.ideal_delta_vbe(temperature_k) / rb, 1e-9)
        for _ in range(max_iterations):
            ia = current - leak_a
            ib = current - leak_b
            if ia <= 0.0 or ib <= 0.0:
                raise ModelError(
                    "substrate leakage exceeds the loop current at "
                    f"{temperature_k:.1f} K"
                )
            dvbe = self._pair.qa.vbe_for_ic(ia, temperature_k) - self._pair.qb.vbe_for_ic(
                ib, temperature_k
            )
            updated = (dvbe + vos) / rb
            if updated <= 0.0:
                raise ConvergenceError(
                    "loop equation has no positive-current solution "
                    f"(vos={vos:.3e} V at {temperature_k:.1f} K)"
                )
            if abs(updated - current) < tol_a:
                return updated
            current = updated
        raise ConvergenceError(
            f"behavioural loop did not converge at {temperature_k:.1f} K"
        )

    def _vref_once(self, temperature_k: float, vref_estimate: float) -> float:
        cfg = self.config
        current = self.branch_current(temperature_k, vref_estimate=vref_estimate)
        leak_a, _ = self._leakages(temperature_k)
        vbe_a = self._pair.qa.vbe_for_ic(current - leak_a, temperature_k)
        # Series-RE drop of QA (the netlist path has the explicit
        # resistor; the unit device's RE carries I + its base current,
        # but the base-current part is < 2% and folded in here).
        vbe_a += current * cfg.params.re
        return vbe_a + current * self._resistance(cfg.rx1, temperature_k)

    def vref(self, temperature_k: float) -> float:
        """Reference output voltage at temperature [V].

        Two passes: the finite-gain offset term depends weakly on VREF
        itself, so the first pass's estimate feeds the second.
        """
        estimate = self._vref_once(temperature_k, 1.23)
        return self._vref_once(temperature_k, estimate)

    def delta_vbe_at_pads(self, temperature_k: float) -> float:
        """Pad-measured dVBE [V] including the P5 tap offset."""
        cfg = self.config
        current = self.branch_current(temperature_k)
        leak_a, leak_b = self._leakages(temperature_k)
        dvbe = self._pair.qa.vbe_for_ic(
            current - leak_a, temperature_k
        ) - self._pair.qb.vbe_for_ic(current - leak_b, temperature_k)
        # Asymmetric series-RE drops (QA: RE; QB: RE/p) appear in the pad
        # voltages exactly as in the netlist.
        dvbe += current * cfg.params.re * (1.0 - 1.0 / cfg.area_ratio)
        return dvbe + cfg.p5_tap_offset_v

    def vbe_qin(self, temperature_k: float) -> float:
        """QIN branch VBE [V] — the single-BJT measurement vehicle."""
        cfg = self.config
        vref = self.vref(temperature_k)
        rc = self._resistance(cfg.rc, temperature_k)
        qin = self._pair.qa  # same unit device
        # Solve vref = VBE(I) + I*(RC + RE) for the QIN branch current.
        current = max((vref - 0.6) / rc, 1e-9)
        for _ in range(60):
            vbe = qin.vbe_for_ic(current, temperature_k)
            updated = (vref - vbe) / (rc + cfg.params.re)
            if updated <= 0.0:
                raise ConvergenceError("QIN branch starved")
            if abs(updated - current) < 1e-15:
                return vbe
            current = updated
        raise ConvergenceError(f"QIN branch did not converge at {temperature_k:.1f} K")
