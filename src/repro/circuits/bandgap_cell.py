"""The programmable bandgap test cell (paper Fig. 3) as a netlist.

Topology (a Kuijk-style realisation of the paper's cell — the published
schematic omits the amplifier internals and exact interconnect, so the
documented functional behaviour is reproduced with the paper's device and
resistor roles; see DESIGN.md section 2):

    vref ---RX1---> p4 ---[QA 1x, diode-connected PNP]---> gnd
    vref ---RX2---> nb ---RB---> p5 ---[QB 8x]-----------> gnd
    vref ---RC----> nin ---[QIN 1x]----------------------> gnd
    op-amp:  (+) = p4, (-) = nb, out = vref

* RX1 = RX2 force equal branch currents once the op-amp has equalised
  the branch-top voltages ("Fixing the same potential through RX1 and
  RX2 imposes the equality between the collector current of QA and QB").
* The loop balance gives ``I = (dVBE + vos_eff)/RB`` and
  ``VREF = VBE_A + I*RX1`` — the paper's "built-in voltage plus VPTAT".
* QB (and QA, 8x smaller) carry parasitic substrate transistors whose
  leakage starves their junctions at high temperature — the cause of the
  measured VREF(T) rise the standard model card misses (Fig. 8).
* ``RadjA`` (section 6) is wired through :class:`repro.circuits.trim.
  TrimNetwork` as a temperature-dependent offset on the amplifier.
* Pads P4/P5 expose the pair's emitters for the dVBE/die-temperature
  measurement (Fig. 2 configuration, "programmable" use of the cell);
  a per-sample measurement-path offset can be inserted in the P5 tap.

Every non-ideality can be switched off, which the tests use to verify
that the ideal cell is an exact textbook bandgap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..bjt.parameters import BJTParameters, PAPER_PNP_SMALL
from ..bjt.substrate import SubstratePNP
from ..errors import NetlistError
from ..spice.elements import Resistor, VoltageSource
from ..spice.elements.bjt import add_bjt
from ..spice.netlist import Circuit
from .amplifier import attach_amplifier
from .trim import TrimNetwork


@dataclass(frozen=True)
class CellNodes:
    """Node names of interest in the built cell."""

    vref: str = "vref"
    p4: str = "p4"      # QA emitter / branch-A top (pad P4)
    nb: str = "nb"      # branch-B top (op-amp inverting sense)
    p5: str = "p5"      # QB emitter (pad P5)
    p5_pad: str = "p5_pad"  # measurement tap including path offset
    nin: str = "nin"    # QIN emitter (single-BJT measurement vehicle)


@dataclass(frozen=True)
class BandgapCellConfig:
    """Component values and non-idealities of the test cell.

    Defaults give a ~1.23 V reference biased at ~9 uA per branch with the
    compensation optimum near the paper's swept RadjA values.
    """

    #: Unit device (QA/QIN); QB is its area-8 copy.
    params: BJTParameters = field(default_factory=lambda: PAPER_PNP_SMALL)
    area_ratio: float = 8.0
    #: Branch resistors from vref to the branch tops [ohm].
    rx1: float = 58.0e3
    rx2: float = 58.0e3
    #: dVBE gain resistor [ohm].
    rb: float = 6.0e3
    #: QIN bias resistor [ohm].
    rc: float = 58.0e3
    #: n-well resistor linear tempco [1/K] (all resistors track together,
    #: so ratios are temperature-flat, as on the paper's die).
    resistor_tc1: float = 1.5e-3
    #: Op-amp open-loop gain and untrimmed input offset.
    opamp_gain: float = 1.0e4
    opamp_vos: float = 0.0
    #: Multiplicative mismatch on QB's IS (1.0 = matched).
    is_mismatch: float = 1.0
    #: Parasitic substrate transistor of the unit device; scaled by area
    #: for QB.  None disables the parasitic entirely.
    substrate_unit: Optional[SubstratePNP] = field(
        default_factory=lambda: SubstratePNP(area=1.0)
    )
    #: Saturation-drive factor of the parasitics (the cell runs its PNPs
    #: "at the limit of the saturation", so the default is fully driven).
    substrate_drive: float = 1.0
    #: Adjustment resistor (paper section 6) [ohm].
    radja: float = 0.0
    #: Offset inserted in the P5 measurement tap [V] (measurement-path
    #: series drops; per-sample).
    p5_tap_offset_v: float = 0.0

    def __post_init__(self) -> None:
        if min(self.rx1, self.rx2, self.rb, self.rc) <= 0.0:
            raise NetlistError("cell resistors must be positive")
        if self.area_ratio <= 1.0:
            raise NetlistError("area ratio must exceed 1")
        if self.radja < 0.0:
            raise NetlistError("RadjA must be non-negative")
        if not 0.0 <= self.substrate_drive <= 1.0:
            raise NetlistError("substrate drive must be in [0, 1]")

    def qb_params(self) -> BJTParameters:
        """QB: area-scaled copy of the unit device with IS mismatch."""
        from ..bjt.pair import derive_qb_params

        return derive_qb_params(self.params, self.area_ratio, self.is_mismatch)

    def trim(self) -> TrimNetwork:
        """The trim network corresponding to this configuration."""
        leak_b = (
            None
            if self.substrate_unit is None
            else self.substrate_unit.scaled(self.area_ratio)
        )
        return TrimNetwork(
            radja_ohm=self.radja,
            base_offset_v=self.opamp_vos,
            leakage=leak_b,
            drive=self.substrate_drive,
        )


def build_bandgap_cell(
    config: Optional[BandgapCellConfig] = None,
    nodes: CellNodes = CellNodes(),
    supply_node: Optional[str] = None,
    amp_output_resistance: float = 0.0,
    amp_pole_hz: Optional[float] = None,
    amp_inputs: Optional[Tuple[str, str]] = None,
) -> Circuit:
    """Build the test-cell netlist for the given configuration.

    ``supply_node`` makes the amplifier's upper rail track that node's
    voltage instead of the fixed ``rail_high`` (the startup-transient
    hook: the caller wires a ramped VDD source to it);
    ``amp_output_resistance`` inserts a series resistor between the
    amplifier output and ``vref`` so the reference node has a finite
    drive impedance — with a load capacitor this is what gives the
    startup waveform its time constant.  Both default to off, leaving
    the DC cell exactly as before.

    ``amp_pole_hz`` gives the amplifier macro a single open-loop pole in
    small-signal (AC) analyses; ``amp_inputs`` makes the amplifier sense
    that ``(inp, inn)`` node pair *instead of* ``(p4, nb)`` — i.e. it
    breaks the feedback loop at the amplifier input.  That is the right
    place to break it: the macro's inputs draw no current, so pinning
    them to external sources changes no loading anywhere — the network
    still hangs off the amplifier output (through its output
    resistance) exactly as in closed loop, and with the test pair
    pinned at the closed-loop values of ``p4``/``nb`` the broken
    circuit linearises at the closed loop's own operating point.
    """
    config = config or BandgapCellConfig()
    circuit = Circuit(title="bandgap test cell (paper Fig. 3)")
    tc = config.resistor_tc1
    tnom = config.params.tnom

    # Branch resistors.
    circuit.add(Resistor("RX1", nodes.vref, nodes.p4, config.rx1, tc1=tc, tnom=tnom))
    circuit.add(Resistor("RX2", nodes.vref, nodes.nb, config.rx2, tc1=tc, tnom=tnom))
    circuit.add(Resistor("RB", nodes.nb, nodes.p5, config.rb, tc1=tc, tnom=tnom))
    circuit.add(Resistor("RC", nodes.vref, nodes.nin, config.rc, tc1=tc, tnom=tnom))

    # Devices (PNP, emitter up, diode-connected to ground).  Substrate
    # leakage exits at the *emitter* node: these are substrate/lateral
    # PNPs whose parasitic steals emitter current (paper section 4).
    sub_a = sub_b = None
    if config.substrate_unit is not None:
        sub_a = config.substrate_unit
        sub_b = config.substrate_unit.scaled(config.area_ratio)
    qa = add_bjt(circuit, "QA", "0", "0", nodes.p4, config.params)
    qb = add_bjt(circuit, "QB", "0", "0", nodes.p5, config.qb_params())
    add_bjt(circuit, "QIN", "0", "0", nodes.nin, config.params)
    if sub_a is not None:
        _attach_emitter_leakage(circuit, "QA", nodes.p4, sub_a, config.substrate_drive)
        _attach_emitter_leakage(circuit, "QB", nodes.p5, sub_b, config.substrate_drive)

    # The amplifier, with the RadjA trim folded into its offset law.
    trim = config.trim()
    amp_kwargs = {}
    if amp_pole_hz is not None:
        amp_kwargs["pole_hz"] = amp_pole_hz
    sense_p, sense_n = amp_inputs if amp_inputs is not None else (nodes.p4, nodes.nb)
    attach_amplifier(
        circuit,
        sense_p,
        sense_n,
        nodes.vref,
        output_resistance=amp_output_resistance,
        gain=config.opamp_gain,
        vos=trim.offset_law(),
        supply=supply_node,
        **amp_kwargs,
    )

    # Measurement tap for pad P5: a series source models the path offset
    # (no current flows into the measurement instrument).  The sign is
    # chosen so a positive offset *increases* the measured dVBE =
    # V(P4) - V(P5_pad), matching the convention of
    # BiasedPair.delta_vbe_offset_v.
    circuit.add(
        VoltageSource("VP5TAP", nodes.p5_pad, nodes.p5, -config.p5_tap_offset_v)
    )
    return circuit


def _attach_emitter_leakage(
    circuit: Circuit,
    device_name: str,
    emitter_node: str,
    substrate: SubstratePNP,
    drive: float,
) -> None:
    """Divert the parasitic's leakage from the emitter node to ground.

    Implemented as a temperature-law current source (the parasitic's
    saturation-current law times the drive factor).
    """
    from ..spice.elements import CurrentSource

    def leakage(temperature_k: float) -> float:
        return substrate.leakage_current(temperature_k) * drive

    circuit.add(CurrentSource(f"ILEAK_{device_name}", emitter_node, "0", leakage))


def measure_delta_vbe(op_point, nodes: CellNodes = CellNodes()) -> float:
    """dVBE as measured at the pads: ``V(P4) - V(P5_pad)`` [V].

    With a zero tap offset this is the junction dVBE (plus series-RE
    drops); per-sample tap offsets shift it, which is exactly the error
    the paper's Table 1 quantifies through the computed temperatures.
    """
    return op_point.voltage(nodes.p4) - op_point.voltage(nodes.p5_pad)


def measure_vref(op_point, nodes: CellNodes = CellNodes()) -> float:
    """The reference output voltage [V]."""
    return op_point.voltage(nodes.vref)


def measure_vbe_qin(op_point, nodes: CellNodes = CellNodes()) -> float:
    """QIN's base-emitter voltage [V] (single-BJT measurement vehicle)."""
    return op_point.voltage(nodes.nin)
