"""Supply-ramp startup versions of the reference circuits.

The classic failure mode of references like the paper's cell is the
startup transient: the amplifier loop has a degenerate near-zero-current
state at VDD = 0, and the circuit only reaches the bandgap operating
point once the ramping supply opens the amplifier's output window.  The
builders here take the DC netlists of :mod:`repro.circuits.bandgap_cell`
and :mod:`repro.circuits.sub1v`, make the amplifier rails track a
``vdd`` node, wire a PULSE-ramped supply to it, give the amplifier a
finite output resistance and hang load/compensation capacitors on the
reference node — everything the transient engine needs to produce a real
settling waveform instead of a quasi-static one.

The companion experiment (``experiments/startup_transient.py``) ramps
VDD, integrates through the snap-on, and asserts the settled output
matches the powered-up DC operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import NetlistError
from ..spice.elements import Capacitor, VoltageSource
from ..spice.elements.sources import Pulse
from ..spice.netlist import Circuit
from .bandgap_cell import BandgapCellConfig, CellNodes, build_bandgap_cell
from .sub1v import Sub1VConfig, build_sub1v_cell

#: Node the ramped supply drives (the amplifier's sensed rail).
SUPPLY_NODE = "vdd"


@dataclass(frozen=True)
class StartupRampConfig:
    """Shape of the VDD ramp and the output-node dynamics."""

    #: Final supply voltage [V].
    vdd: float = 5.0
    #: Time the supply stays at 0 before ramping [s].
    delay: float = 5e-6
    #: 0 -> VDD ramp duration [s].
    ramp: float = 50e-6
    #: Amplifier output resistance [ohm] — with ``c_load`` this sets the
    #: dominant startup time constant (tau = r_out * c_load).
    amp_rout: float = 10e3
    #: Load/compensation capacitor on the reference output [F].
    c_load: float = 100e-12
    #: Small parasitic capacitance on the amplifier input nodes [F]
    #: (0 disables — the default: the branch-top poles are far above the
    #: output pole and roughly triple the integration cost).
    c_parasitic: float = 0.0

    def __post_init__(self) -> None:
        if self.vdd <= 0.0:
            raise NetlistError("final VDD must be positive")
        if self.delay < 0.0 or self.ramp <= 0.0:
            raise NetlistError("ramp timing must be non-negative / positive")
        if self.amp_rout <= 0.0 or self.c_load <= 0.0:
            raise NetlistError("output resistance and load cap must be positive")

    def supply_source(self) -> VoltageSource:
        """The ramped supply: a single-shot PULSE that never falls."""
        return VoltageSource(
            "VDD",
            SUPPLY_NODE,
            "0",
            Pulse(0.0, self.vdd, delay=self.delay, rise=self.ramp),
        )

    @property
    def t_on(self) -> float:
        """Time at which the supply reaches its final value [s]."""
        return self.delay + self.ramp


def build_startup_bandgap_cell(
    ramp: Optional[StartupRampConfig] = None,
    cell: Optional[BandgapCellConfig] = None,
    nodes: CellNodes = CellNodes(),
) -> Circuit:
    """The Fig. 3 test cell behind a ramping VDD.

    Same topology as :func:`build_bandgap_cell`, plus: amplifier rails
    tracking the ``vdd`` node, finite amplifier output resistance, the
    PULSE supply, and the load/parasitic capacitors.
    """
    ramp = ramp or StartupRampConfig()
    circuit = build_bandgap_cell(
        cell,
        nodes=nodes,
        supply_node=SUPPLY_NODE,
        amp_output_resistance=ramp.amp_rout,
    )
    circuit.add(ramp.supply_source())
    circuit.add(Capacitor("CLOAD", nodes.vref, "0", ramp.c_load))
    if ramp.c_parasitic > 0.0:
        circuit.add(Capacitor("CP4", nodes.p4, "0", ramp.c_parasitic))
        circuit.add(Capacitor("CNB", nodes.nb, "0", ramp.c_parasitic))
    return circuit


@dataclass(frozen=True)
class Sub1VStartupConfig(StartupRampConfig):
    """Sub-1V defaults: a 0.9 V supply and the same ramp shape."""

    vdd: float = 0.9


def build_startup_sub1v_cell(
    ramp: Optional[Sub1VStartupConfig] = None,
    config: Optional[Sub1VConfig] = None,
) -> Circuit:
    """The current-mode sub-1V reference behind a ramping VDD.

    The load capacitor sits on the mirror-control node ``vc`` (the
    compensation point of the Banba loop) and on the output.
    """
    ramp = ramp or Sub1VStartupConfig()
    circuit = build_sub1v_cell(
        config,
        supply_node=SUPPLY_NODE,
        amp_output_resistance=ramp.amp_rout,
        rail_high=ramp.vdd,
    )
    circuit.add(ramp.supply_source())
    circuit.add(Capacitor("CCOMP", "vc", "0", ramp.c_load))
    circuit.add(Capacitor("CLOAD", "vref", "0", ramp.c_load))
    if ramp.c_parasitic > 0.0:
        circuit.add(Capacitor("CNA", "na", "0", ramp.c_parasitic))
        circuit.add(Capacitor("CNB", "nb", "0", ramp.c_parasitic))
    return circuit
