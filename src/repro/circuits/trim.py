"""The RadjA adjustment of the paper's section 6.

The paper adds an adjustment resistor ``RadjA`` "between P5 and P6 in
order to correct the non linear component of dVBE due to the substrate
leakage current and the offset of op-amp stage".  Our realisation: a
replica of QB's substrate-leakage current is routed through RadjA into
the amplifier's input path, so the voltage seen by the loop is

    vos_eff(T) = vos0 - RadjA * I_leak_B(T) * drive

Writing the loop balance of the cell (see ``bandgap_cell``) with QB's
junction starved by the same leakage shows the leakage error enters as
``+ (7/8) * VT/I * I_leak`` while the compensation enters as
``- RadjA * I_leak``; they cancel at

    RadjA* = (7/8) * VT / I_bias

which for the cell's ~9 uA bias is ~2.5 kOhm — squarely inside the
paper's swept values {0, 1.8k, 2.5k, 2.7k}, with 2.7k slightly
overcorrecting exactly as its Fig. 8 (S4) shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..bjt.substrate import SubstratePNP
from ..constants import thermal_voltage
from ..errors import ModelError

#: The RadjA values of the paper's Fig. 8 (curves S1-S4) [ohm].
PAPER_RADJA_SWEEP_OHM = (0.0, 1.8e3, 2.5e3, 2.7e3)


@dataclass(frozen=True)
class TrimNetwork:
    """RadjA trim: builds the effective op-amp offset law.

    Parameters
    ----------
    radja_ohm:
        Adjustment resistor value [ohm] (0 disables the compensation).
    base_offset_v:
        The untrimmed amplifier-stage offset (per-sample).
    leakage:
        The parasitic whose replica flows through RadjA (QB's, i.e. the
        8x device's, in the paper's cell).
    drive:
        Saturation-drive factor of the parasitic in [0, 1].
    """

    radja_ohm: float = 0.0
    base_offset_v: float = 0.0
    leakage: Optional[SubstratePNP] = None
    drive: float = 1.0

    def __post_init__(self) -> None:
        if self.radja_ohm < 0.0:
            raise ModelError("RadjA must be non-negative")
        if not 0.0 <= self.drive <= 1.0:
            raise ModelError("drive must be in [0, 1]")

    def compensation_v(self, temperature_k: float) -> float:
        """Voltage the trim subtracts from the loop at temperature [V]."""
        if self.leakage is None or self.radja_ohm == 0.0 or self.drive == 0.0:
            return 0.0
        return self.radja_ohm * self.leakage.leakage_current(temperature_k) * self.drive

    def effective_offset(self, temperature_k: float) -> float:
        """``vos_eff(T) = vos0 - RadjA * I_leak(T) * drive`` [V]."""
        return self.base_offset_v - self.compensation_v(temperature_k)

    def offset_law(self) -> Callable[[float], float]:
        """Return ``vos_eff`` as a callable for the OpAmp element."""
        return self.effective_offset


def optimal_radja(bias_current_a: float, temperature_k: float = 300.15,
                  area_ratio: float = 8.0) -> float:
    """First-order optimum ``RadjA* = (1 - 1/p) * VT / I`` [ohm].

    Derivation: the leakage steals ``I_leak`` from QB's junction and
    ``I_leak/p`` from QA's, perturbing the junction dVBE by
    ``+ VT * (1 - 1/p) * I_leak / I``; the trim subtracts
    ``RadjA * I_leak``.  Setting the two equal cancels the leakage to
    first order independently of its magnitude.
    """
    if bias_current_a <= 0.0:
        raise ModelError("bias current must be positive")
    if area_ratio <= 1.0:
        raise ModelError("area ratio must exceed 1")
    return (1.0 - 1.0 / area_ratio) * thermal_voltage(temperature_k) / bias_current_a
