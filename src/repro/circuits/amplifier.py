"""Shared amplifier-wiring idiom for the reference-cell builders.

Both netlist builders (the Fig. 3 test cell and the sub-1V Banba cell)
close their loop with an op-amp macro that may drive the target node
through a finite output resistance — the knob that, together with a
load capacitor, gives the startup transient its time constant.  The
node-aliasing and validation live here once so the builders cannot
drift apart.
"""

from __future__ import annotations

from ..errors import NetlistError
from ..spice.elements import OpAmp, Resistor
from ..spice.netlist import Circuit


def attach_amplifier(
    circuit: Circuit,
    inp: str,
    inn: str,
    target: str,
    output_resistance: float = 0.0,
    **opamp_kwargs,
) -> None:
    """Add an op-amp ``AMP`` driving ``target``, through ``ROUT`` if a
    positive ``output_resistance`` is given (via the internal node
    ``<target>#amp``, following the ``#`` convention of the BJT
    expansion so it cannot collide with a user-named cell node);
    remaining keyword arguments go to :class:`OpAmp`.
    """
    if output_resistance < 0.0:
        raise NetlistError("amplifier output resistance must be non-negative")
    amp_out = target if output_resistance == 0.0 else f"{target}#amp"
    circuit.add(OpAmp("AMP", inp, inn, amp_out, **opamp_kwargs))
    if output_resistance > 0.0:
        circuit.add(Resistor("ROUT", amp_out, target, output_resistance))
