"""Circuit-level building blocks of the paper's test structure.

* :mod:`repro.circuits.bias_pair` — the Fig. 2 configuration: QA/QB
  forced to (nominally) equal collector currents, dVBE read out;
* :mod:`repro.circuits.bandgap_cell` — the Fig. 3 programmable bandgap
  test cell as a netlist builder;
* :mod:`repro.circuits.trim` — the RadjA/ADJ trim machinery;
* :mod:`repro.circuits.reference` — a closed-form behavioural model of
  the same cell for fast sweeps and Monte-Carlo;
* :mod:`repro.circuits.sub1v` — the sub-1V current-mode reference, both
  closed-form and as a netlist (Banba topology);
* :mod:`repro.circuits.startup` — supply-ramp startup versions of the
  reference cells for the transient engine.
"""

from .bias_pair import BiasPairConfig, BiasedPair
from .bandgap_cell import BandgapCellConfig, build_bandgap_cell, CellNodes
from .trim import TrimNetwork, PAPER_RADJA_SWEEP_OHM
from .reference import BehaviouralBandgap
from .sub1v import Sub1VBandgap, Sub1VConfig, build_sub1v_cell
from .startup import (
    StartupRampConfig,
    Sub1VStartupConfig,
    build_startup_bandgap_cell,
    build_startup_sub1v_cell,
)

__all__ = [
    "BiasPairConfig",
    "BiasedPair",
    "BandgapCellConfig",
    "build_bandgap_cell",
    "CellNodes",
    "TrimNetwork",
    "PAPER_RADJA_SWEEP_OHM",
    "BehaviouralBandgap",
    "Sub1VBandgap",
    "Sub1VConfig",
    "build_sub1v_cell",
    "StartupRampConfig",
    "Sub1VStartupConfig",
    "build_startup_bandgap_cell",
    "build_startup_sub1v_cell",
]
