"""A stdlib (urllib) client for the simulation service.

:class:`ServeClient` wraps the HTTP endpoint table — submit, poll,
fetch result, metrics, health, shutdown — and raises
:class:`ServeError` with the server's typed error record on any non-2xx
response, so callers see ``PlanError`` rejections as structured data
rather than an HTTP stack trace.

The module doubles as the CLI::

    python -m repro.serve.client [--url http://127.0.0.1:8347] CMD ...

    health                      liveness record
    submit <request.json|->     POST a job (file or stdin); prints the id
    run <request.json|->        submit + wait + print the result payload
    status <job-id>             one job's status record
    result <job-id>             a finished job's result payload
    wait <job-id>               poll until done/failed, then print status
    metrics                     raw Prometheus text
    shutdown                    graceful drain-and-stop

A 400 rejection prints ``HTTP 400 PlanError: <message>`` on stderr and
exits 1 — the validation boundary is visible end to end.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Optional

from .server import DEFAULT_HOST, DEFAULT_PORT


class ServeError(Exception):
    """A non-2xx server response, carrying the typed error record."""

    def __init__(self, status: int, error_type: str, message: str):
        super().__init__(f"HTTP {status} {error_type}: {message}")
        self.status = status
        self.error_type = error_type
        self.message = message


class ServeClient:
    """One service endpoint; all methods are blocking HTTP round trips."""

    def __init__(self, url: Optional[str] = None, timeout: float = 30.0):
        self.url = (url or f"http://{DEFAULT_HOST}:{DEFAULT_PORT}").rstrip("/")
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------
    def _request(self, method: str, path: str, payload=None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.url + path, data=data, method=method, headers=headers
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                body = resp.read()
                content_type = resp.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            with exc:  # close the response in all paths
                body = exc.read()
            try:
                error = json.loads(body).get("error", {})
            except (json.JSONDecodeError, AttributeError):
                error = {}
            raise ServeError(
                exc.code,
                error.get("type", "HTTPError"),
                error.get("message", body.decode(errors="replace").strip()),
            ) from None
        if content_type.startswith("text/plain"):
            return body.decode()
        return json.loads(body)

    # -- endpoints -----------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, request: dict) -> str:
        """POST a job request; returns the job id (raises ServeError on
        a 400 validation rejection)."""
        return self._request("POST", "/jobs", payload=request)["id"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list:
        return self._request("GET", "/jobs")["jobs"]

    def result(self, job_id: str) -> dict:
        """A finished job's ``AnalysisResult.to_dict`` payload."""
        return self._request("GET", f"/jobs/{job_id}/result")["result"]

    def wait(self, job_id: str, timeout: float = 120.0, poll_s: float = 0.05) -> dict:
        """Poll until the job leaves queued/running; returns its status."""
        deadline = time.time() + timeout
        while True:
            record = self.status(job_id)
            if record["state"] not in ("queued", "running"):
                return record
            if time.time() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after {timeout}s"
                )
            time.sleep(poll_s)

    def run(self, request: dict, timeout: float = 120.0) -> dict:
        """Submit, wait, and return the result payload (raises
        :class:`ServeError` if the job terminally failed)."""
        job_id = self.submit(request)
        record = self.wait(job_id, timeout=timeout)
        if record["state"] != "done":
            error = record.get("error") or {}
            raise ServeError(
                500, error.get("error", "JobFailed"),
                f"job {job_id} failed: {error.get('message', record)}",
            )
        return self.result(job_id)

    def metrics(self) -> str:
        return self._request("GET", "/metrics")

    def wait_healthy(self, timeout: float = 15.0, poll_s: float = 0.1) -> dict:
        """Poll ``/healthz`` until the server answers (startup barrier)."""
        deadline = time.time() + timeout
        while True:
            try:
                return self.health()
            except (OSError, ServeError):
                if time.time() > deadline:
                    raise
                time.sleep(poll_s)

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _load_request(arg: str) -> dict:
    if arg == "-":
        return json.loads(sys.stdin.read())
    with open(arg) as fh:
        return json.loads(fh.read())


def main(argv: Optional[list] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    url = None
    if "--url" in argv:
        at = argv.index("--url")
        if at + 1 >= len(argv):
            print("--url needs a value", file=sys.stderr)
            return 2
        url = argv[at + 1]
        del argv[at:at + 2]
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    command, args = argv[0], argv[1:]
    client = ServeClient(url)
    try:
        if command == "health":
            print(json.dumps(client.health(), indent=2, sort_keys=True))
        elif command == "submit":
            print(client.submit(_load_request(args[0] if args else "-")))
        elif command == "run":
            payload = client.run(_load_request(args[0] if args else "-"))
            print(json.dumps(payload, indent=2, sort_keys=True))
        elif command == "status":
            print(json.dumps(client.status(args[0]), indent=2, sort_keys=True))
        elif command == "result":
            print(json.dumps(client.result(args[0]), indent=2, sort_keys=True))
        elif command == "wait":
            print(json.dumps(client.wait(args[0]), indent=2, sort_keys=True))
        elif command == "metrics":
            print(client.metrics(), end="")
        elif command == "shutdown":
            print(json.dumps(client.shutdown(), sort_keys=True))
        else:
            print(f"unknown command {command!r}", file=sys.stderr)
            return 2
    except ServeError as exc:
        print(exc, file=sys.stderr)
        return 1
    except (IndexError, FileNotFoundError, json.JSONDecodeError) as exc:
        print(f"bad arguments for {command!r}: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())


__all__ = ["ServeClient", "ServeError", "main"]
