"""Stdlib-only HTTP front end over the :class:`~.jobs.JobService`.

One ``ThreadingHTTPServer`` (the handler threads only queue/read — all
solving happens on the service's worker threads) exposing the endpoint
table in the package docstring.  Error contract:

* Submission failures caught by the :class:`~repro.errors.PlanError`
  validation boundary (or any other typed ``NetlistError``) => **400**
  with ``{"error": {"type": ..., "message": ...}}`` — before any solve.
* Unknown job id => **404**; result of a pending job => **409**; result
  of a failed job => **500** carrying the job's failure record.
* Malformed JSON or a non-JSON body => **400** (``type: "ValueError"``).

The server binds ``127.0.0.1`` by default and has no authentication —
it is a local simulation daemon, not a network deployment (see the
security note in the package docstring and README).  Graceful shutdown
— SIGINT/SIGTERM or ``POST /shutdown`` — stops accepting jobs, drains
the queue, flushes every pooled session to the cache store, then stops
the listener.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..errors import NetlistError
from ..resilience import RunPolicy
from ..spice.stats import STATS
from ..telemetry import prometheus_text
from .jobs import DONE, FAILED, QUEUED, RUNNING, JobService

#: Default bind address: loopback only (no authentication by design).
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8347


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; the owning :class:`ReproServer` injects
    itself as ``self.server.repro`` (the ThreadingHTTPServer instance
    carries the reference)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # Quiet by default: the BaseHTTPRequestHandler per-request stderr
    # log is noise under pytest and CI.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    # -- plumbing ------------------------------------------------------
    def _send(self, status: int, payload, content_type="application/json") -> None:
        body = (
            payload.encode()
            if isinstance(payload, str)
            else (json.dumps(payload, sort_keys=True) + "\n").encode()
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, exc_type: str, message: str) -> None:
        self._send(status, {"error": {"type": exc_type, "message": message}})

    def _read_json(self):
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body; expected JSON")
        return json.loads(raw)

    @property
    def _service(self) -> JobService:
        return self.server.repro.service

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            service = self._service
            self._send(
                200,
                {
                    "status": "ok",
                    "uptime_s": round(time.time() - service.started_at, 3),
                    "jobs": service.counts(),
                    "sessions": len(service.pool),
                    "store": service.store is not None
                    and str(service.store.path),
                },
            )
        elif path == "/metrics":
            service = self._service
            counts = service.counts()
            gauges = (
                "# HELP repro_serve_queue_depth Jobs queued and not yet "
                "running.\n"
                "# TYPE repro_serve_queue_depth gauge\n"
                f"repro_serve_queue_depth {counts[QUEUED]}\n"
                "# HELP repro_serve_jobs_running Jobs currently executing.\n"
                "# TYPE repro_serve_jobs_running gauge\n"
                f"repro_serve_jobs_running {counts[RUNNING]}\n"
                "# HELP repro_serve_sessions_pooled Live sessions in the "
                "pool.\n"
                "# TYPE repro_serve_sessions_pooled gauge\n"
                f"repro_serve_sessions_pooled {len(service.pool)}\n"
            )
            self._send(
                200,
                prometheus_text(STATS) + gauges,
                content_type="text/plain; version=0.0.4",
            )
        elif path == "/jobs":
            self._send(
                200, {"jobs": [job.to_dict() for job in self._service.jobs()]}
            )
        elif path.startswith("/jobs/"):
            parts = path.split("/")[2:]  # ["<id>"] or ["<id>", "result"]
            job = self._service.job(parts[0])
            if job is None:
                self._error(404, "NotFound", f"no such job {parts[0]!r}")
            elif len(parts) == 1:
                self._send(200, job.to_dict())
            elif parts[1] == "result":
                if job.state in (QUEUED, RUNNING):
                    self._error(
                        409, "Pending", f"job {job.id} is {job.state}; poll "
                        f"GET /jobs/{job.id} until it finishes"
                    )
                elif job.state == FAILED:
                    self._send(500, job.to_dict(include_result=False))
                else:
                    self._send(200, job.to_dict(include_result=True))
            else:
                self._error(404, "NotFound", f"no such route {path!r}")
        else:
            self._error(404, "NotFound", f"no such route {path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/jobs":
            try:
                request = self._read_json()
            except (ValueError, json.JSONDecodeError) as exc:
                self._error(400, "ValueError", str(exc))
                return
            try:
                job = self._service.submit(request)
            except NetlistError as exc:
                # The typed validation boundary: PlanError (and every
                # other NetlistError) rejected before any solve.
                self._error(400, type(exc).__name__, str(exc))
                return
            self._send(202, {"id": job.id, "state": job.state})
        elif path == "/shutdown":
            self._send(202, {"status": "stopping"})
            self.server.repro.stop_async()
        else:
            self._error(404, "NotFound", f"no such route {path!r}")


class ReproServer:
    """The bound listener plus its job service.

    ``start()`` serves on a daemon thread (tests and the experiment use
    this in-process); :func:`serve` below is the blocking CLI entry.
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        cache_dir=None,
        workers: int = 1,
        session_limit: int = 8,
        default_policy: Optional[RunPolicy] = None,
    ):
        self.service = JobService(
            cache_dir=cache_dir,
            workers=workers,
            session_limit=session_limit,
            default_policy=default_policy,
        )
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.repro = self
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ReproServer":
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: drain jobs, flush the store, stop listening."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        self.service.stop(drain=drain)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def stop_async(self) -> None:
        """Shutdown from a request handler (cannot block its own server
        thread on ``httpd.shutdown``)."""
        threading.Thread(
            target=self.stop, name="repro-serve-stop", daemon=True
        ).start()

    def wait(self) -> None:
        """Block until the server has fully stopped."""
        self._stopped.wait()
        if self._thread is not None:
            self._thread.join()


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    cache_dir=None,
    workers: int = 1,
    session_limit: int = 8,
) -> None:
    """Blocking entry point: ``python -m repro --serve``.

    Installs SIGINT/SIGTERM handlers that trigger the same graceful
    drain-flush-stop path as ``POST /shutdown``.
    """
    server = ReproServer(
        host=host,
        port=port,
        cache_dir=cache_dir,
        workers=workers,
        session_limit=session_limit,
    )

    def _signalled(_signum, _frame):
        server.stop_async()

    signal.signal(signal.SIGINT, _signalled)
    signal.signal(signal.SIGTERM, _signalled)
    server.start()
    bound_host, bound_port = server.address
    store = server.service.store
    print(f"repro-serve listening on http://{bound_host}:{bound_port}")
    if store is not None:
        print(f"repro-serve cache store: {store.path}")
    print("repro-serve endpoints: POST /jobs, GET /jobs[/<id>[/result]], "
          "GET /metrics, GET /healthz, POST /shutdown")
    server.wait()
    print("repro-serve stopped")


__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ReproServer",
    "serve",
]
