"""Simulation-as-a-service: a persistent solved-point store and an
async HTTP job server over a Session pool.

The Session layer (PR 5) owns a solved-point cache that amortises the
cold gain-stepping ladder across analyses — but the cache dies with the
process.  This package is the missing durability-and-transport layer:

* :mod:`repro.serve.cachestore` — :class:`~.cachestore.CacheStore`, a
  disk-backed store for solved points keyed by the *existing* session
  cache key ``(topology fingerprint, overrides, pinned time, solver
  options, temperature)``.  Sessions load it on open and flush to it on
  close (``Session(..., store=...)``), so warm starts survive process
  death and are shared across concurrent sessions.  The on-disk format
  is a schema-versioned JSONL log (``repro-opcache/1``) with
  flock-serialized atomic appends, last-write-wins compaction, an
  LRU-style capacity bound, and corruption tolerance: a truncated or
  garbage file is treated as empty (counted in
  ``STATS.op_store_corrupt_records``), never a crash.  The multistable
  warm-start gates are untouched by construction — the store only
  *feeds* :class:`~repro.spice.session.SolvedPointCache`, whose value
  band, 50 K temperature band and pinned-time key still gate every
  candidate, so a dead-supply state loaded from disk can never seed a
  powered solve.
* :mod:`repro.serve.jobs` — the execution layer: the JSON wire codec
  for plans/circuits, a bounded :class:`~.jobs.SessionPool` (one
  session per topology+options, LRU-evicted through the store), and
  :class:`~.jobs.JobService`, whose worker threads run each job under a
  :class:`~repro.resilience.RunPolicy` via ``supervised_call`` —
  per-job retries/timeouts with ``Outcome``-style failure attribution
  in the job record.
* :mod:`repro.serve.server` — the stdlib-only HTTP front end
  (``ThreadingHTTPServer``).  Endpoints:

  ================================  ==================================
  ``POST /jobs``                    submit ``{"circuit": {"netlist":
                                    ...}, "plan": {...}}``; rejected
                                    *before any solve* by the existing
                                    ``PlanError`` validation boundary
                                    => HTTP 400 with the typed message;
                                    accepted => 202 + job id
  ``GET /jobs``                     job records (most recent last)
  ``GET /jobs/<id>``                one job's status record
  ``GET /jobs/<id>/result``         the ``AnalysisResult.to_dict()``
                                    payload (409 while pending, 500
                                    with the failure record)
  ``GET /metrics``                  ``telemetry.prometheus_text()``
                                    plus job-queue gauges
  ``GET /healthz``                  liveness + job/session counts
  ``POST /shutdown``                graceful drain-and-stop
  ================================  ==================================

* :mod:`repro.serve.client` — a urllib client plus the
  ``python -m repro.serve.client`` CLI (``healthz``/``submit``/
  ``status``/``result``/``metrics``/``shutdown``).

Start a server with ``python -m repro --serve [--port P] [--cache-dir
D]``; it binds ``127.0.0.1`` by default (there is no authentication —
fronting a network deployment is out of scope by design).  Graceful
shutdown (SIGINT/SIGTERM or ``POST /shutdown``) drains in-flight jobs
and flushes every pooled session to the cache store.
"""

from .cachestore import CacheStore, OPCACHE_SCHEMA
from .jobs import JobService, SessionPool
from .server import ReproServer, serve

_CLIENT_EXPORTS = ("ServeClient", "ServeError")


def __getattr__(name):
    # Lazy: importing the package from client.py's own
    # ``python -m repro.serve.client`` entry must not pre-import the
    # client module (runpy would warn about the double import).
    if name in _CLIENT_EXPORTS:
        from . import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CacheStore",
    "JobService",
    "OPCACHE_SCHEMA",
    "ReproServer",
    "ServeClient",
    "ServeError",
    "SessionPool",
    "serve",
]
