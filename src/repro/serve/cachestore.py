"""Disk-backed persistent store for session solved points.

A :class:`CacheStore` persists the exact records a
:class:`~repro.spice.session.SolvedPointCache` exports — keyed by the
existing ``(topology fingerprint, overrides, pinned time, solver
options, temperature)`` cache key — so a session opened in a *new
process* starts with every point its predecessors solved.  The store
never bypasses the cache's warm-start gates: loaded points re-enter
through :meth:`SolvedPointCache.merge` and are re-screened by the value
band, the 50 K temperature band and the pinned-time key on every
lookup, exactly like points solved in-process.  (One deliberate
asymmetry: the session's *baseline* map — pre-override values recorded
when overrides are applied — is not persisted, so a fresh process
treats stored points with unknown override coordinates as
incompatible.  That is the conservative direction: a missing baseline
can only suppress a warm start, never permit one across regimes.)

On-disk format (``repro-opcache/1``)
------------------------------------

A JSONL log: one header line, then one record per solved point::

    {"schema": "repro-opcache/1"}
    {"k": [fp, [[el, attr, val], ...], time, options, temp],
     "x": [...], "i": iterations, "r": residual, "s": strategy}

``k`` is the cache key verbatim (``time`` is ``null`` for plain DC);
``x`` is the solved unknown vector.  The override coordinates a point
was solved at are recoverable from ``k[1]``, so they are not stored
twice.  Floats round-trip exactly through JSON (shortest-repr), so a
re-loaded exact key is byte-identical to the in-memory one.

Durability and concurrency
--------------------------

* **Appends are atomic**: every flush appends whole lines under an
  exclusive ``flock`` on a sidecar lock file (the lock file — not the
  store file — is locked, so compaction's atomic ``os.replace`` of the
  store never strands a waiter on a dead inode).  Two sessions flushing
  to one store interleave records but never interleave bytes; the union
  of their points survives.
* **Compaction** rewrites the log last-write-wins and LRU-bounded
  (append order approximates recency) via a temp file + ``os.replace``
  once the log holds more than twice ``max_points`` records.
* **Corruption is tolerated, not raised**: a missing/garbage header
  makes the store read as empty; a truncated or unparsable record line
  is skipped.  Both are counted (``STATS.op_store_corrupt_records`` and
  :attr:`CacheStore.corrupt_records`) and repaired by the next
  compaction.  No store condition ever crashes a solve.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:  # POSIX only; the store degrades to lock-free appends without it
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from ..spice.stats import STATS

#: Schema tag stamped on the first line of every store file.
OPCACHE_SCHEMA = "repro-opcache/1"

#: Default capacity (solved points kept after compaction/load).
DEFAULT_MAX_POINTS = 4096


def _key_to_json(key: Tuple) -> list:
    """Cache key tuple -> JSON-able list (overrides triples as lists)."""
    fingerprint, overrides, time_key, options_key, temperature_k = key
    return [
        fingerprint,
        [list(triple) for triple in overrides],
        time_key,
        options_key,
        temperature_k,
    ]


def _key_from_json(raw: list) -> Tuple:
    """Rebuild the exact in-memory key tuple from its JSON form."""
    fingerprint, overrides, time_key, options_key, temperature_k = raw
    return (
        str(fingerprint),
        tuple(
            (str(el), str(attr), float(val)) for el, attr, val in overrides
        ),
        None if time_key is None else float(time_key),
        str(options_key),
        float(temperature_k),
    )


def _key_id(key: Tuple) -> str:
    """Canonical string identity of a key (the dedupe handle)."""
    return json.dumps(_key_to_json(key), sort_keys=False)


class CacheStore:
    """One on-disk solved-point store (see the module docstring).

    ``path`` is the store file; parent directories are created on the
    first flush.  ``max_points`` bounds the record count kept by load
    and compaction (LRU by append order).
    """

    def __init__(self, path, max_points: int = DEFAULT_MAX_POINTS):
        self.path = Path(path)
        if max_points < 1:
            raise ValueError(f"max_points must be >= 1, got {max_points}")
        self.max_points = int(max_points)
        #: Lifetime count of tolerated corrupt records/headers.
        self.corrupt_records = 0
        #: Key identities known to be on disk already (appends skip
        #: them, so repeated flushes of a stable cache write nothing).
        self._persisted: set = set()
        #: Approximate record-line count of the log (drives compaction).
        self._record_lines = 0

    # -- locking --------------------------------------------------------
    def _lock_path(self) -> Path:
        return self.path.with_name(self.path.name + ".lock")

    class _Locked:
        """Exclusive advisory lock over every mutating/reading op."""

        def __init__(self, store: "CacheStore"):
            self._store = store
            self._fh = None

        def __enter__(self):
            if fcntl is not None:
                self._store._lock_path().parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(self._store._lock_path(), "a")
                fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX)
            return self

        def __exit__(self, *exc):
            if self._fh is not None:
                fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
                self._fh.close()
            return False

    # -- reading --------------------------------------------------------
    def _read_records(self) -> Tuple[Dict[str, Tuple[Tuple, tuple]], int]:
        """Parse the log: ``{key_id: (key, value)}`` last-write-wins in
        append order, plus the tolerated-corruption count."""
        records: Dict[str, Tuple[Tuple, tuple]] = {}
        bad = 0
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return records, 0
        except OSError:
            return records, 1
        lines = text.splitlines()
        self._record_lines = max(0, len(lines) - 1)
        if not lines:
            return records, 0
        try:
            header = json.loads(lines[0])
            schema = header.get("schema")
        except (json.JSONDecodeError, AttributeError):
            schema = None
        if schema != OPCACHE_SCHEMA:
            # Unknown/garbage header: the whole file is unreadable as a
            # store.  Treated as empty; the next compaction rewrites it.
            return records, 1
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                row = json.loads(line)
                key = _key_from_json(row["k"])
                value = (
                    key[4],                      # temperature_k
                    key[2],                      # time_key
                    key[3],                      # options_key
                    {(el, attr): val for el, attr, val in key[1]},
                    [float(v) for v in row["x"]],
                    int(row["i"]),
                    float(row["r"]),
                    str(row["s"]),
                )
            except (json.JSONDecodeError, KeyError, IndexError, TypeError,
                    ValueError):
                bad += 1
                continue
            key_id = _key_id(key)
            if key_id in records:
                del records[key_id]  # re-insert at the tail (recency)
            records[key_id] = (key, value)
        return records, bad

    def load(self) -> List[Tuple[Tuple, tuple]]:
        """Read the store into the ``SolvedPointCache.export()`` format.

        Feeds ``cache.merge(store.load())`` on session open.  Corrupt
        headers/records are tolerated and counted; the newest
        ``max_points`` records win.
        """
        with self._Locked(self):
            records, bad = self._read_records()
        self._note_corruption(bad)
        out = list(records.values())
        if len(out) > self.max_points:
            out = out[-self.max_points:]
        self._persisted.update(_key_id(key) for key, _value in out)
        STATS.op_store_loads += 1
        STATS.op_store_points_loaded += len(out)
        return out

    def __len__(self) -> int:
        """Distinct solved points currently readable from disk."""
        with self._Locked(self):
            records, _bad = self._read_records()
        return min(len(records), self.max_points)

    # -- writing --------------------------------------------------------
    @staticmethod
    def _record_line(key: Tuple, value: tuple) -> str:
        _temp, _time, _okey, _coords, x, iterations, residual, strategy = value
        x_list = x.tolist() if hasattr(x, "tolist") else [float(v) for v in x]
        return json.dumps(
            {
                "k": _key_to_json(key),
                "x": x_list,
                "i": int(iterations),
                "r": float(residual),
                "s": str(strategy),
            }
        )

    def absorb(self, exported: List[Tuple[Tuple, tuple]]) -> int:
        """Append the not-yet-persisted points of a cache export.

        One flush = one atomic locked append of whole lines; returns
        the number of records written.  Triggers compaction when the
        log has grown past twice ``max_points``.
        """
        fresh = [
            (key, value)
            for key, value in exported
            if _key_id(key) not in self._persisted
        ]
        STATS.op_store_flushes += 1
        if not fresh:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = "".join(
            self._record_line(key, value) + "\n" for key, value in fresh
        )
        bad_header = 0
        with self._Locked(self):
            new_file = not self.path.exists() or self.path.stat().st_size == 0
            if not new_file:
                # Appending after a garbage header would write records
                # no load could ever see; replace the unreadable file.
                with open(self.path) as fh:
                    first = fh.readline()
                try:
                    valid = json.loads(first).get("schema") == OPCACHE_SCHEMA
                except (json.JSONDecodeError, AttributeError):
                    valid = False
                if not valid:
                    new_file = True
                    bad_header = 1
                    self.path.unlink()
                    self._record_lines = 0
            with open(self.path, "a") as fh:
                if new_file:
                    fh.write(json.dumps({"schema": OPCACHE_SCHEMA}) + "\n")
                fh.write(payload)
        self._note_corruption(bad_header)
        self._persisted.update(_key_id(key) for key, _value in fresh)
        self._record_lines += len(fresh)
        STATS.op_store_points_written += len(fresh)
        if self._record_lines > 2 * self.max_points:
            self.compact()
        return len(fresh)

    def compact(self) -> int:
        """Rewrite the log: last-write-wins, newest ``max_points`` kept.

        Atomic (temp file + ``os.replace``) under the store lock; also
        repairs any tolerated corruption.  Returns the record count of
        the compacted store.
        """
        with self._Locked(self):
            records, bad = self._read_records()
            kept = list(records.items())
            if len(kept) > self.max_points:
                kept = kept[-self.max_points:]
            tmp = self.path.with_name(self.path.name + ".tmp")
            tmp.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w") as fh:
                fh.write(json.dumps({"schema": OPCACHE_SCHEMA}) + "\n")
                for _key_str, (key, value) in kept:
                    fh.write(self._record_line(key, value) + "\n")
            os.replace(tmp, self.path)
            self._record_lines = len(kept)
        self._note_corruption(bad)
        self._persisted = {_key_id(key) for _k, (key, _v) in kept}
        return len(kept)

    def _note_corruption(self, bad: int) -> None:
        if bad:
            self.corrupt_records += bad
            STATS.op_store_corrupt_records += bad


__all__ = ["CacheStore", "OPCACHE_SCHEMA", "DEFAULT_MAX_POINTS"]
