"""Job execution layer of the simulation service.

Three pieces, all transport-agnostic (the HTTP front end in
:mod:`repro.serve.server` is a thin shell over them):

* **Wire codec** — :func:`plan_from_wire` / :func:`plan_to_wire` map
  the declarative :mod:`repro.spice.plans` dataclasses to/from plain
  JSON dicts (``{"analysis": "TempSweep", "temperatures_k": [...]}``),
  :func:`circuit_from_wire` parses the submitted netlist text, and
  :func:`policy_from_wire` builds the per-job
  :class:`~repro.resilience.RunPolicy`.  Every malformed request raises
  a typed :class:`~repro.errors.PlanError` (or another
  ``NetlistError``) *before any solve* — the same validation boundary
  the Session planner enforces, which the server maps to HTTP 400.
* **SessionPool** — one :class:`~repro.spice.session.Session` per
  distinct (netlist, solver options) submission, bounded and
  LRU-evicted; every pooled session shares the service's persistent
  :class:`~.cachestore.CacheStore`, so jobs against the same topology
  warm-start off each other *and* off previous server processes.
* **JobService** — the async queue: ``submit`` validates and enqueues,
  worker threads execute each job under ``supervised_call`` with the
  job's :class:`RunPolicy` (retries / per-job timeout), and the
  :class:`JobRecord` carries ``Outcome``-style failure attribution
  (error type, message, attempts, wall time).  Completed jobs flush
  the owning session to the store immediately (write-through), so a
  server kill after job completion never loses solved points.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import asdict, fields
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import NetlistError, PlanError
from ..resilience import RunPolicy
from ..resilience.supervisor import supervised_call
from ..spice.parser import parse_netlist
from ..spice.plans import (
    ACSweep,
    AnalysisPlan,
    DCSweep,
    MonteCarlo,
    OP,
    TempSweep,
    Transient,
)
from ..spice.session import Session
from ..spice.solver import SolverOptions
from ..spice.stats import STATS
from ..spice.transient import TransientOptions
from .cachestore import CacheStore

#: Wire names -> plan classes.
PLAN_TYPES = {
    cls.__name__: cls
    for cls in (OP, DCSweep, TempSweep, ACSweep, Transient, MonteCarlo)
}

#: RunPolicy knobs a job may set over the wire (`retryable`, `sleep`
#: and `on_failure` stay server-side: the executor always records).
_POLICY_WIRE_KEYS = ("max_retries", "backoff_s", "backoff_factor", "timeout_s")


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------

def _triples(name: str, value) -> Tuple[Tuple[str, str, float], ...]:
    try:
        return tuple((el, attr, val) for el, attr, val in value)
    except (TypeError, ValueError):
        raise PlanError(
            f"{name} must be a list of [element, attribute, value] triples"
        ) from None


def _solver_options_from_wire(value) -> SolverOptions:
    if not isinstance(value, Mapping):
        raise PlanError(f"options must be an object, got {type(value).__name__}")
    allowed = {spec.name for spec in fields(SolverOptions)}
    unknown = sorted(set(value) - allowed)
    if unknown:
        raise PlanError(f"unknown solver option(s): {', '.join(unknown)}")
    kwargs = {
        # JSON arrays arrive as lists; SolverOptions equality (and the
        # session cache key, which is its repr) expects tuples.
        key: tuple(v) if isinstance(v, list) else v
        for key, v in value.items()
    }
    try:
        return SolverOptions(**kwargs)
    except (TypeError, ValueError) as exc:
        raise PlanError(f"invalid solver options: {exc}") from None


def _transient_options_from_wire(value) -> TransientOptions:
    if not isinstance(value, Mapping):
        raise PlanError(f"options must be an object, got {type(value).__name__}")
    allowed = {spec.name for spec in fields(TransientOptions)}
    unknown = sorted(set(value) - allowed)
    if unknown:
        raise PlanError(f"unknown transient option(s): {', '.join(unknown)}")
    kwargs = dict(value)
    if "newton" in kwargs and kwargs["newton"] is not None:
        kwargs["newton"] = _solver_options_from_wire(kwargs["newton"])
    try:
        return TransientOptions(**kwargs)
    except (TypeError, ValueError, NetlistError) as exc:
        raise PlanError(f"invalid transient options: {exc}") from None


def plan_from_wire(data) -> AnalysisPlan:
    """Build an :class:`AnalysisPlan` from its JSON wire form.

    Raises :class:`PlanError` — before any solve — on an unknown
    analysis name, unknown fields, or any construction-time validation
    failure of the plan itself.
    """
    if not isinstance(data, Mapping):
        raise PlanError(f"plan must be an object, got {type(data).__name__}")
    payload = dict(data)
    name = payload.pop("analysis", None)
    cls = PLAN_TYPES.get(name)
    if cls is None:
        raise PlanError(
            f"unknown analysis {name!r}; known: {', '.join(sorted(PLAN_TYPES))}"
        )
    allowed = {spec.name for spec in fields(cls)}
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise PlanError(f"{name} has no field(s): {', '.join(unknown)}")
    kwargs = {}
    for key, value in payload.items():
        if key == "options":
            if value is not None:
                kwargs[key] = (
                    _transient_options_from_wire(value)
                    if cls is Transient
                    else _solver_options_from_wire(value)
                )
        elif key == "overrides":
            kwargs[key] = _triples(f"{name}.overrides", value)
        elif key == "trials":
            try:
                kwargs[key] = tuple(
                    _triples(f"{name}.trials[{i}]", trial)
                    for i, trial in enumerate(value)
                )
            except TypeError:
                raise PlanError(f"{name}.trials must be a list of trials") from None
        elif key == "inner":
            kwargs[key] = plan_from_wire(value)
        elif key == "policy":
            if value is not None:
                raise PlanError(
                    "MonteCarlo.policy does not travel on the wire; submit "
                    "it as the job-level \"policy\" instead"
                )
        elif isinstance(value, list):
            kwargs[key] = tuple(value)
        else:
            kwargs[key] = value
    return cls(**kwargs)


def plan_to_wire(plan: AnalysisPlan) -> dict:
    """The JSON wire form of a plan (inverse of :func:`plan_from_wire`)."""
    if not isinstance(plan, AnalysisPlan):
        raise PlanError(f"expected an AnalysisPlan, got {type(plan).__name__}")
    out: Dict[str, object] = {"analysis": type(plan).__name__}
    for spec in fields(plan):
        value = getattr(plan, spec.name)
        if spec.name == "options":
            if value is not None:
                out[spec.name] = asdict(value)
        elif spec.name == "policy":
            if value is not None:
                raise PlanError(
                    "MonteCarlo.policy does not travel on the wire; submit "
                    "it as the job-level \"policy\" instead"
                )
        elif spec.name == "inner":
            out[spec.name] = plan_to_wire(value)
        elif spec.name == "trials":
            out[spec.name] = [
                [list(triple) for triple in trial] for trial in value
            ]
        elif spec.name == "overrides":
            out[spec.name] = [list(triple) for triple in value]
        elif isinstance(value, tuple):
            out[spec.name] = list(value)
        else:
            out[spec.name] = value
    return out


def circuit_from_wire(data):
    """Parse the wire circuit ``{"netlist": text[, "title": t]}``."""
    if not isinstance(data, Mapping):
        raise PlanError(f"circuit must be an object, got {type(data).__name__}")
    unknown = sorted(set(data) - {"netlist", "title"})
    if unknown:
        raise PlanError(f"circuit has no field(s): {', '.join(unknown)}")
    netlist = data.get("netlist")
    if not isinstance(netlist, str) or not netlist.strip():
        raise PlanError("circuit.netlist must be non-empty netlist text")
    return parse_netlist(netlist, title=str(data.get("title", "")))


def policy_from_wire(data) -> Optional[RunPolicy]:
    """Build the per-job :class:`RunPolicy` (``None`` wire => None)."""
    if data is None:
        return None
    if not isinstance(data, Mapping):
        raise PlanError(f"policy must be an object, got {type(data).__name__}")
    unknown = sorted(set(data) - set(_POLICY_WIRE_KEYS))
    if unknown:
        raise PlanError(f"policy has no field(s): {', '.join(unknown)}")
    try:
        return RunPolicy(on_failure="record", **dict(data))
    except Exception as exc:
        raise PlanError(f"invalid policy: {exc}") from None


# ----------------------------------------------------------------------
# Session pool
# ----------------------------------------------------------------------

class SessionPool:
    """Bounded pool of live sessions, one per distinct submission.

    Keyed by the raw netlist text (plus title): textually identical
    submissions reuse one session — and its in-memory solved-point
    cache and execution lock — while distinct texts get their own
    session but still share the persistent ``store``, so equal
    *topologies* share warm starts across the pool and across
    processes.  Per-plan solver options ride on the plans themselves
    and need no pool keying.  Eviction is LRU in lease order and
    flushes the evicted session to the store first, so evicting never
    loses solved points.
    """

    def __init__(self, store: Optional[CacheStore] = None, limit: int = 8):
        if limit < 1:
            raise ValueError(f"session pool limit must be >= 1, got {limit}")
        self.store = store
        self.limit = limit
        self._lock = threading.Lock()
        self._sessions: Dict[Tuple[str, str], Tuple[Session, threading.Lock]] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def lease(self, netlist: str, title: str) -> Tuple[Session, threading.Lock]:
        """Get (building if needed) the session for a submission key.

        The returned lock serializes plan execution on that session;
        callers hold it for the duration of validation and solves.
        """
        key = (netlist, title)
        with self._lock:
            entry = self._sessions.pop(key, None)
            if entry is None:
                try:
                    circuit = parse_netlist(netlist, title=title)
                except NetlistError:
                    raise
                except (TypeError, ValueError) as exc:
                    # Parser leaves over malformed numerics; keep the
                    # submit contract: every bad netlist is typed.
                    raise NetlistError(f"netlist parse failed: {exc}") from None
                entry = (
                    Session(circuit, store=self.store),
                    threading.Lock(),
                )
                while len(self._sessions) >= self.limit:
                    oldest_key = next(iter(self._sessions))
                    evicted, _evicted_lock = self._sessions.pop(oldest_key)
                    evicted.flush_store()
            self._sessions[key] = entry  # re-insert at the tail (LRU)
            return entry

    def flush_all(self) -> int:
        """Flush every pooled session to the store; returns points written."""
        with self._lock:
            sessions = [session for session, _lock in self._sessions.values()]
        return sum(session.flush_store() for session in sessions)


# ----------------------------------------------------------------------
# Job records and the service
# ----------------------------------------------------------------------

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


class JobRecord:
    """One submitted job: identity, lifecycle, attribution, result."""

    def __init__(self, job_id: str, request: dict, plan: AnalysisPlan,
                 circuit_title: str, fingerprint: str):
        self.id = job_id
        self.request = request
        self.plan = plan
        self.circuit_title = circuit_title
        self.fingerprint = fingerprint
        self.state = QUEUED
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.attempts = 0
        self.error: Optional[dict] = None
        self.result: Optional[dict] = None

    def to_dict(self, include_result: bool = False) -> dict:
        out = {
            "id": self.id,
            "state": self.state,
            "analysis": type(self.plan).__name__,
            "circuit": self.circuit_title,
            "fingerprint": self.fingerprint,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "error": self.error,
        }
        if include_result:
            out["result"] = self.result
        return out


class JobService:
    """The async job engine: validate-submit-queue-execute-record.

    ``workers`` threads drain the queue; each job executes inside its
    session's lock under ``supervised_call`` with the job's policy (or
    ``default_policy``).  ``cache_dir`` attaches a persistent
    :class:`CacheStore` (``<cache_dir>/opcache.jsonl``) shared by every
    pooled session.
    """

    def __init__(
        self,
        cache_dir=None,
        workers: int = 1,
        default_policy: Optional[RunPolicy] = None,
        session_limit: int = 8,
        store_points: int = 4096,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store = (
            None
            if cache_dir is None
            else CacheStore(Path(cache_dir) / "opcache.jsonl", max_points=store_points)
        )
        self.pool = SessionPool(store=self.store, limit=session_limit)
        self.default_policy = default_policy or RunPolicy(on_failure="record")
        self.started_at = time.time()
        self._queue: "queue.Queue" = queue.Queue()
        self._jobs: Dict[str, JobRecord] = {}
        self._jobs_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._stopping = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- submission ----------------------------------------------------
    def submit(self, request) -> JobRecord:
        """Validate a wire request and enqueue it.

        Everything checkable without a solve happens here: the request
        shape, the netlist parse, plan construction, the planner's
        circuit-dependent validation, and the policy.  Any failure
        raises the typed :class:`PlanError`/``NetlistError`` the HTTP
        layer maps to 400 — and costs the submitter nothing but the
        validation itself.
        """
        try:
            if not isinstance(request, Mapping):
                raise PlanError(
                    f"job must be an object, got {type(request).__name__}"
                )
            unknown = sorted(set(request) - {"circuit", "plan", "policy"})
            if unknown:
                raise PlanError(f"job has no field(s): {', '.join(unknown)}")
            if "circuit" not in request or "plan" not in request:
                raise PlanError('job needs "circuit" and "plan" fields')
            circuit_wire = request["circuit"]
            if not isinstance(circuit_wire, Mapping):
                raise PlanError("circuit must be an object")
            plan = plan_from_wire(request["plan"])
            policy_from_wire(request.get("policy"))  # validated here, built per run
            netlist = circuit_wire.get("netlist")
            if not isinstance(netlist, str) or not netlist.strip():
                raise PlanError("circuit.netlist must be non-empty netlist text")
            title = str(circuit_wire.get("title", ""))
            session, lock = self.pool.lease(netlist, title)
            with lock:
                session.validate(plan)
        except NetlistError:
            STATS.serve_jobs_rejected += 1
            raise
        if self._stopping:
            raise PlanError("service is shutting down; not accepting jobs")
        with self._jobs_lock:
            job = JobRecord(
                f"j{next(self._ids):04d}",
                dict(request),
                plan,
                session.circuit.title,
                session.fingerprint,
            )
            self._jobs[job.id] = job
        STATS.serve_jobs_submitted += 1
        self._queue.put(job.id)
        return job

    # -- queries -------------------------------------------------------
    def job(self, job_id: str) -> Optional[JobRecord]:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[JobRecord]:
        with self._jobs_lock:
            return list(self._jobs.values())

    def counts(self) -> Dict[str, int]:
        out = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        for job in self.jobs():
            out[job.state] += 1
        return out

    # -- execution -----------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:  # shutdown sentinel
                self._queue.task_done()
                return
            try:
                self._execute(self._jobs[job_id])
            finally:
                self._queue.task_done()

    def _execute(self, job: JobRecord) -> None:
        job.state = RUNNING
        job.started_at = time.time()
        circuit_wire = job.request["circuit"]
        session, lock = self.pool.lease(
            circuit_wire["netlist"], str(circuit_wire.get("title", ""))
        )
        policy = policy_from_wire(job.request.get("policy")) or self.default_policy
        with lock:
            outcome = supervised_call(
                lambda: session.run(job.plan).to_dict(), index=0, policy=policy
            )
            flushed = session.flush_store()
        job.attempts = outcome.attempts
        job.finished_at = time.time()
        if outcome.ok:
            job.result = outcome.value
            job.state = DONE
            STATS.serve_jobs_completed += 1
        else:
            failure = outcome.to_dict()
            failure.pop("index", None)
            job.error = failure
            job.state = FAILED
            STATS.serve_jobs_failed += 1
        del flushed  # write-through: points persisted before the state flip

    # -- lifecycle -----------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every queued/running job has finished."""
        deadline = None if timeout is None else time.time() + timeout
        while True:
            counts = self.counts()
            if counts[QUEUED] == 0 and counts[RUNNING] == 0:
                return True
            if deadline is not None and time.time() > deadline:
                return False
            time.sleep(0.01)

    def stop(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Graceful shutdown: stop accepting, drain, flush the store."""
        self._stopping = True
        if drain:
            self.drain(timeout)
        for _thread in self._workers:
            self._queue.put(None)
        for thread in self._workers:
            thread.join(timeout=5.0)
        self.pool.flush_all()


__all__ = [
    "PLAN_TYPES",
    "JobRecord",
    "JobService",
    "SessionPool",
    "circuit_from_wire",
    "plan_from_wire",
    "plan_to_wire",
    "policy_from_wire",
]
