"""Fig. 6: the EG(XTI) characteristic straights C1, C2, C3.

* C1 — best fitting of VBE(T) over IC in [1e-8, 1e-5] A (section 5);
* C2 — the analytical method's line with the *sensor* temperatures;
* C3 — the analytical method's line with the *computed* temperatures
  (raw dVBE readout, i.e. before the pad correction).

Checks: C1 and C2 nearly coincide ("gives indication of the equivalence
between these two methods"), C3 is parallel but clearly displaced, and
the slopes match the eq. 14 theory (~25 meV per unit XTI for the
-25/75 C pair).
"""

from __future__ import annotations

import numpy as np

from ..extraction.characteristic import (
    characteristic_straight,
    theoretical_slope,
)
from ..extraction.meijer import meijer_line
from ..extraction.pipeline import (
    PAPER_FIT_CURRENTS_A,
    run_analytical_extraction,
    run_classical_extraction,
)
from ..measurement.campaign import MeasurementCampaign
from ..measurement.samples import paper_lot
from .registry import ExperimentResult, register

XTI_GRID = np.linspace(0.5, 6.5, 13)


@register("fig6")
def run() -> ExperimentResult:
    sample = paper_lot()[0]
    campaign = MeasurementCampaign(sample, include_noise=True, seed=6)

    classical = run_classical_extraction(campaign, currents_a=PAPER_FIT_CURRENTS_A)
    c1 = classical.straight

    analytical = run_analytical_extraction(campaign)
    i1, i2, i3 = analytical.point_indices
    curve = analytical.pair_curve
    v1, v2, v3 = (float(curve.vbe_a_v[i]) for i in (i1, i2, i3))

    # C2: sensor temperatures; C3: computed (raw) temperatures.  Each
    # Meijer temperature pair is a line in the (XTI, EG) plane; use the
    # widest pair (T1, T3) as the paper's plotted straight.
    t1s, t3s = (float(curve.sensor_temperatures_k[i]) for i in (i1, i3))
    slope_c2, intercept_c2 = meijer_line(t1s, t3s, v1, v3)
    t1c = float(analytical.computed_temperatures_k[i1])
    t3c = float(analytical.computed_temperatures_k[i3])
    slope_c3, intercept_c3 = meijer_line(t1c, t3c, v1, v3)

    rows = []
    for xti in XTI_GRID:
        rows.append(
            (
                float(xti),
                c1.eg_at(float(xti)),
                intercept_c2 + slope_c2 * float(xti),
                intercept_c3 + slope_c3 * float(xti),
            )
        )

    mid_xti = 3.5
    c1_mid = c1.eg_at(mid_xti)
    c2_mid = intercept_c2 + slope_c2 * mid_xti
    c3_mid = intercept_c3 + slope_c3 * mid_xti
    theory = theoretical_slope(t1s, t3s)

    checks = {
        "c1_c2_nearly_coincide": abs(c1_mid - c2_mid) < 5e-3,
        "c3_clearly_displaced": abs(c3_mid - c2_mid) > 2.0 * abs(c1_mid - c2_mid)
        and abs(c3_mid - c2_mid) > 5e-3,
        "straights_roughly_parallel": abs(slope_c3 - slope_c2) < 0.15 * abs(slope_c2),
        "slope_matches_eq14_theory": abs(abs(slope_c2) - theory) < 0.1 * theory,
        "eg_window_matches_fig6": all(1.0 < r[1] < 1.3 for r in rows),
    }
    notes = (
        f"EG at XTI={mid_xti}: C1={c1_mid:.4f}, C2={c2_mid:.4f}, "
        f"C3={c3_mid:.4f} eV; C3-C2 displacement = "
        f"{1000.0 * (c3_mid - c2_mid):+.1f} meV (computed temperatures are "
        "compressed by the uncorrected dVBE offset); slopes "
        f"C1={c1.slope:.4f}, C2={slope_c2:.4f}, C3={slope_c3:.4f} eV/XTI "
        f"(eq. 14 theory {-theory:.4f})."
    )
    return ExperimentResult(
        experiment_id="fig6",
        title="Fig. 6 — characteristic straights C1/C2/C3",
        columns=["XTI", "EG C1 [eV]", "EG C2 [eV]", "EG C3 [eV]"],
        rows=rows,
        checks=checks,
        notes=notes,
    )
