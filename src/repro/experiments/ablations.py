"""Ablation experiments: the paper's numbered robustness claims and the
library's own design-choice checks.

* ``ablation_sensitivity`` — E6 (1% VBE -> up to 8% EG), E7 (dT2 < 5 K
  harmless) and E9 (IS(T) ~20 %/K);
* ``ablation_current_ratio`` — E8: the correction coefficient
  ``A = (k*T2/q) ln X`` evaluated at the paper's own operating point
  (T1 = 0 C, T2 = 100 C), expected ~0.3 mV i.e. ~0.45% of dVBE;
* ``ablation_solver`` — the netlist MNA path against the behavioural
  closed-form path (DESIGN.md design decision 1).
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.sensitivity import (
    eg_error_from_vbe_gain_error,
    eg_error_worst_single_point,
    is_sensitivity_band,
    reference_temperature_robustness,
)
from ..circuits.bandgap_cell import BandgapCellConfig, build_bandgap_cell, measure_vref
from ..circuits.reference import BehaviouralBandgap
from ..constants import thermal_voltage
from ..extraction.temperature import a_coefficient, current_ratio_x
from ..measurement.samples import DeviceSample
from ..spice.plans import TempSweep
from ..spice.session import SessionRecipe, run_plans
from ..units import celsius_to_kelvin
from .registry import ExperimentResult, register


@register("ablation_sensitivity")
def run_sensitivity() -> ExperimentResult:
    gain_error = abs(eg_error_from_vbe_gain_error(0.01))
    worst_point = eg_error_worst_single_point(0.01)
    dt2 = reference_temperature_robustness((-5.0, -3.0, 3.0, 5.0))
    is_band = is_sensitivity_band()

    rows = [
        ("E6 gain error 1% -> |dEG|/EG", f"{100.0 * gain_error:.2f} %"),
        ("E6 worst single point 1% -> |dEG|/EG", f"{100.0 * worst_point:.1f} %"),
        ("E7 max |dEG|/EG for |dT2| <= 5 K", f"{100.0 * float(dt2[:, 0].max()):.2e} %"),
        ("E7 max |dXTI| for |dT2| <= 5 K", f"{float(dt2[:, 1].max()):.3f}"),
        ("E9 IS sensitivity band", f"{is_band[0]:.1f}..{is_band[1]:.1f} %/K"),
    ]
    checks = {
        "paper_8_percent_inside_error_bracket": gain_error < 0.08 < worst_point,
        "dt2_leaves_eg_invariant": float(dt2[:, 0].max()) < 1e-10,
        "dt2_xti_drift_small": float(dt2[:, 1].max()) < 0.08,
        "is_sensitivity_reaches_20_percent": is_band[1] > 18.0,
    }
    notes = (
        "Paper section 3 claims: 1% VBE error -> up to 8% EG error "
        "(bracketed by our coherent-gain and worst-single-point cases); "
        "dT2 < 5 K has no significant influence (EG exactly invariant "
        "under the coherent axis stretch, XTI drifts ~0.011/K); IS "
        "sensitivity around 20 %/K (ours peaks at the cold end)."
    )
    return ExperimentResult(
        experiment_id="ablation_sensitivity",
        title="Ablations E6/E7/E9 — error-propagation claims",
        columns=["quantity", "value"],
        rows=rows,
        checks=checks,
        notes=notes,
    )


@register("ablation_current_ratio")
def run_current_ratio() -> ExperimentResult:
    # The paper's own evaluation point: T1 = 0 C, T2 = 100 C, with the
    # on-chip bias whose QB/QA ratio drifts with temperature.
    t1 = celsius_to_kelvin(0.0)
    t2 = celsius_to_kelvin(100.0)
    sample = DeviceSample(current_ratio_drift_per_k=1.0e-4)
    ratio_law = sample.current_ratio_law(reference_k=t2)
    ia = sample.bias_current_a
    x = current_ratio_x(
        ic_a_t1=ia,
        ic_b_t1=ia * ratio_law(t1),
        ic_a_t2=ia,
        ic_b_t2=ia * ratio_law(t2),
    )
    a = a_coefficient(t2, x)
    dvbe_t2 = thermal_voltage(t2) * math.log(8.0)
    # The paper quotes dVBE(T2) = 70 mV (their pair runs a slightly
    # larger effective ratio); report against both.
    rows = [
        ("X (eq. 20)", f"{x:.5f}"),
        ("A = (k*T2/q) ln X", f"{1000.0 * abs(a):.3f} mV"),
        ("dVBE(T2) of a p=8 pair", f"{1000.0 * dvbe_t2:.1f} mV"),
        ("A / dVBE(T2)", f"{100.0 * abs(a) / dvbe_t2:.2f} %"),
        ("A / 70 mV (paper's dVBE)", f"{100.0 * abs(a) / 70e-3:.2f} %"),
    ]
    checks = {
        "a_in_fraction_of_mv_range": 0.05e-3 < abs(a) < 1.0e-3,
        "a_below_one_percent_of_dvbe": abs(a) / dvbe_t2 < 0.01,
    }
    notes = (
        "Paper section 4: A ~ 0.3 mV, i.e. 0.45% of dVBE(T2) = 70 mV for "
        "T1 = 0 C, T2 = 100 C — 'the temperature variation of IC has a "
        "weak influence on the values of T1 and T2'.  Our on-chip bias "
        "drift model lands in the same fraction-of-a-millivolt decade."
    )
    return ExperimentResult(
        experiment_id="ablation_current_ratio",
        title="Ablation E8 — the eq. 19-20 correction coefficient A",
        columns=["quantity", "value"],
        rows=rows,
        checks=checks,
        notes=notes,
    )


@register("ablation_solver")
def run_solver() -> ExperimentResult:
    # DESIGN.md decision 1: two simulation paths for the cell.
    temps_c = (-55.0, -5.0, 45.0, 95.0, 145.0)
    temps_k = tuple(celsius_to_kelvin(t) for t in temps_c)
    variants = (
        ("ideal", BandgapCellConfig(substrate_unit=None)),
        ("leaky", BandgapCellConfig()),
        ("trimmed", BandgapCellConfig(radja=2.5e3)),
    )
    # Three sessions (one per configuration) over the same grid: the
    # Session batch layer solves them (and fans them across processes
    # under REPRO_WORKERS) with results identical to sequential sweeps.
    sweeps = run_plans(
        [
            (
                SessionRecipe(builder=build_bandgap_cell, args=(config,)),
                TempSweep(temperatures_k=temps_k),
            )
            for _label, config in variants
        ]
    )
    rows = []
    worst = 0.0
    for (label, config), netlist in zip(variants, sweeps):
        behavioural = BehaviouralBandgap(config)
        for temp_c, point in zip(temps_c, netlist.points):
            difference = behavioural.vref(point.temperature_k) - measure_vref(point)
            worst = max(worst, abs(difference))
            rows.append((label, temp_c, round(measure_vref(point), 5),
                         round(1000.0 * difference, 3)))
    checks = {
        "paths_agree_below_5mv": worst < 5e-3,
    }
    notes = (
        f"Worst netlist-vs-behavioural VREF difference: {1000.0 * worst:.2f} mV "
        "(residual: finite op-amp gain equilibrium and base-current "
        "routing).  The behavioural path powers the Fig. 8 sweep and the "
        "Monte-Carlo; the MNA netlist validates it."
    )
    return ExperimentResult(
        experiment_id="ablation_solver",
        title="Ablation — netlist MNA vs behavioural bandgap",
        columns=["config", "T [C]", "VREF netlist [V]", "beh - netlist [mV]"],
        rows=rows,
        checks=checks,
        notes=notes,
    )
