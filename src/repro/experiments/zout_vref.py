"""Output impedance of the reference node vs frequency.

A unit AC current pushed into ``vref`` makes the node phasor the output
impedance in ohms.  The shape is the textbook closed-loop signature:

* at DC the feedback divides the open-loop drive impedance by
  ``1 + T0`` — a few ohms instead of kilo-ohms;
* as the loop gain falls past its bandwidth the impedance rises
  (the inductive-looking region every regulated output has);
* at the top of the band the load capacitor takes over and the
  impedance falls as ``1/(w C)``.

Anchor check: the w -> 0 value must match the DC slope
``dVREF/dI_load`` computed by finite differences on two plain DC
solves, the same engine-agreement criterion the PSRR experiment uses.
"""

from __future__ import annotations

import numpy as np

from ..spice.ac import log_frequencies
from ..spice.plans import ACSweep, DCSweep
from ..spice.session import Session
from ..circuits.bandgap_cell import measure_vref
from .ac_common import C_LOAD, build_zout_cell
from .registry import ExperimentResult, register

#: Swept band [Hz].
ZOUT_F_START, ZOUT_F_STOP = 10.0, 1e7


def dc_output_resistance(delta_i: float = 1e-6, session: Session = None) -> float:
    """``|dVREF/dI|`` by finite differences on DC solves [ohm].

    One ``DCSweep`` of the test current source — shared session, and
    when the caller passes its own session the probe points warm-start
    from the AC analysis's cached operating point (the +-1 uA nudge
    sits well inside the warm-start band), skipping the cold
    gain-stepping ladder entirely.
    """
    session = session or Session(build_zout_cell)
    sweep = session.run(
        DCSweep(source="ITEST", values=(-delta_i, +delta_i))
    )
    low, high = (measure_vref(point) for point in sweep.points)
    return abs(high - low) / (2.0 * delta_i)


@register("zout_vref")
def run() -> ExperimentResult:
    frequencies = log_frequencies(ZOUT_F_START, ZOUT_F_STOP, points_per_decade=4)
    # One session serves the AC sweep AND the finite-difference anchor:
    # the second analysis warm-starts from the first's cached op.
    session = Session(build_zout_cell)
    result = session.run(ACSweep(frequencies_hz=tuple(frequencies))).ac_results[0]
    impedance = np.abs(result.phasor("vref"))
    phase_deg = result.phase_deg("vref")

    rows = [
        (
            float(f"{frequency:.6g}"),
            round(float(impedance[i]), 3),
            round(float(phase_deg[i]), 1),
        )
        for i, frequency in enumerate(frequencies)
    ]

    zout_dc_fd = dc_output_resistance(session=session)
    zout_dc_ac = float(impedance[0])
    peak_index = int(np.argmax(impedance))
    peak = float(impedance[peak_index])
    cap_asymptote = 1.0 / (2.0 * np.pi * float(frequencies[-1]) * C_LOAD)

    checks = {
        "dc_zout_matches_finite_difference_slope_within_0p5db": bool(
            abs(20.0 * np.log10(zout_dc_ac / zout_dc_fd)) < 0.5
        ),
        "feedback_keeps_dc_zout_below_100_ohm": bool(zout_dc_ac < 100.0),
        "impedance_peaks_inside_the_band": bool(
            0 < peak_index < len(frequencies) - 1
        ),
        "peak_exceeds_dc_by_a_decade": bool(peak > 10.0 * zout_dc_ac),
        "load_capacitor_takes_over_at_the_top": bool(
            abs(float(impedance[-1]) - cap_asymptote) < 0.05 * cap_asymptote
        ),
    }
    notes = (
        f"DC output resistance by finite differences: {zout_dc_fd:.3f} ohm; "
        f"AC value at {frequencies[0]:.0f} Hz: {zout_dc_ac:.3f} ohm.  Peak "
        f"{peak:.0f} ohm at {float(frequencies[peak_index]) / 1e3:.0f} kHz "
        f"(the loop-bandwidth shoulder); at {frequencies[-1]:.0g} Hz the "
        f"response sits on the 1/(wC) load-capacitor asymptote "
        f"({cap_asymptote:.1f} ohm)."
    )
    return ExperimentResult(
        experiment_id="zout_vref",
        title="Output impedance of the reference vs frequency (AC analysis)",
        columns=["f [Hz]", "|Zout| [ohm]", "arg Zout [deg]"],
        rows=rows,
        checks=checks,
        notes=notes,
    )
