"""Text rendering of experiment results (feeds EXPERIMENTS.md)."""

from __future__ import annotations

from typing import Dict

from .registry import ExperimentResult


def render_result(result: ExperimentResult, max_rows: int = 40) -> str:
    """Render one experiment as a markdown section."""
    lines = [f"## {result.title}", ""]
    widths = [
        max(len(str(column)), *(len(_fmt(row[i])) for row in result.rows))
        if result.rows
        else len(str(column))
        for i, column in enumerate(result.columns)
    ]
    header = " | ".join(
        str(col).ljust(width) for col, width in zip(result.columns, widths)
    )
    lines.append("| " + header + " |")
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    shown = result.rows[:max_rows]
    for row in shown:
        cells = " | ".join(
            _fmt(value).ljust(width) for value, width in zip(row, widths)
        )
        lines.append("| " + cells + " |")
    if len(result.rows) > max_rows:
        lines.append(f"| ... ({len(result.rows) - max_rows} more rows) |")
    lines.append("")
    if result.notes:
        lines.append(result.notes)
        lines.append("")
    lines.append("Shape checks:")
    for name, ok in result.checks.items():
        lines.append(f"* {'PASS' if ok else 'FAIL'} — {name}")
    lines.append("")
    return "\n".join(lines)


def render_summary(results: Dict[str, ExperimentResult]) -> str:
    """One-line-per-experiment pass/fail summary."""
    lines = ["# Experiment summary", ""]
    for name in sorted(results):
        result = results[name]
        status = "PASS" if result.passed else "FAIL"
        lines.append(f"* {status} `{name}` — {result.title}")
        for failing in result.failing_checks():
            lines.append(f"    * failing: {failing}")
    lines.append("")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
