"""Simulation-service warm start: the persistent cache across restarts.

The witness experiment for the serve subsystem (ROADMAP item 1's
"async service front end"): a real in-process HTTP server
(:class:`~repro.serve.server.ReproServer` on an ephemeral loopback
port) is driven through the real client, killed, and restarted over
the same cache directory.  Three legs, each a counter row:

* ``cold_submit`` — a TempSweep job against an empty store: every
  point is a cache miss, and the HTTP result payload must equal a
  direct in-process ``Session.run(...).to_dict()`` **exactly** (floats
  round-trip JSON by shortest-repr, so equality is bitwise).
* ``restart_resubmit`` — the server is gracefully shut down (which
  flushes the store), a new server opens the same cache dir, and the
  identical job is resubmitted: the store must reload the solved
  points (``op_store_points_loaded``), serve at least one exact cache
  hit, spend **strictly fewer factorizations** than the cold leg, and
  return the identical payload.
* ``reject`` — a plan that fails validation must map to HTTP 400 with
  the typed ``PlanError`` name and move **zero** solver counters: the
  rejection happens before any solve.

Counters are deterministic (one worker thread, serial submissions), so
the row lands in the benchmark campaign index where ``--bench-check``
hard-gates the warm-leg hit/factorization counts on every CI push.
"""

from __future__ import annotations

import tempfile

from ..serve.client import ServeClient, ServeError
from ..serve.jobs import plan_from_wire
from ..serve.server import ReproServer
from ..spice.parser import parse_netlist
from ..spice.session import Session
from ..spice.stats import STATS
from .registry import ExperimentResult, register

#: The served circuit: a two-branch diode divider — nonlinear enough
#: that every DC point runs a real Newton ladder, small enough that the
#: whole three-leg protocol stays in the tier-1 time budget.
NETLIST = """\
.model DM D (IS=1e-15 N=1.0)
V1 in 0 dc 2
R1 in a 1k
D1 a 0 DM
R2 in b 2k
D2 b 0 DM
R3 a b 10k
"""

#: Temperature grid of the served sweep [K].
TEMP_GRID_K = (260.15, 280.15, 300.15, 320.15, 340.15)

#: The job request, verbatim on the wire for both submit legs.
REQUEST = {
    "circuit": {"netlist": NETLIST, "title": "serve-witness"},
    "plan": {
        "analysis": "TempSweep",
        "temperatures_k": list(TEMP_GRID_K),
        "record": ["a", "b"],
    },
}


@register("service_warm_start")
def run() -> ExperimentResult:
    rows = []
    checks = {}

    def leg_row(leg, delta):
        rows.append(
            (
                leg,
                delta["op_cache_hits"],
                delta["op_cache_warm_starts"],
                delta["op_cache_misses"],
                delta["factorizations"],
                delta["op_store_points_loaded"],
                delta["op_store_points_written"],
                delta["serve_jobs_completed"],
                delta["serve_jobs_rejected"],
            )
        )
        return delta

    with tempfile.TemporaryDirectory(prefix="repro-serve-") as cache_dir:
        # -- leg 1: cold submit against an empty store ------------------
        server = ReproServer(port=0, cache_dir=cache_dir, workers=1).start()
        client = ServeClient(server.url)
        client.wait_healthy()
        before = STATS.snapshot()
        payload_cold = client.run(REQUEST)
        cold = leg_row("cold_submit", STATS.delta_since(before))

        direct = (
            Session(parse_netlist(NETLIST, title="serve-witness"))
            .run(plan_from_wire(REQUEST["plan"]))
            .to_dict()
        )
        checks["cold_leg_is_all_misses"] = (
            cold["op_cache_hits"] == 0 and cold["op_cache_misses"] > 0
        )
        checks["http_payload_equals_direct_session_run"] = payload_cold == direct
        checks["cold_leg_flushes_store"] = cold["op_store_points_written"] == len(
            TEMP_GRID_K
        )

        # -- leg 2: kill, restart over the same store, resubmit ---------
        client.shutdown()
        server.wait()
        server = ReproServer(port=0, cache_dir=cache_dir, workers=1).start()
        client = ServeClient(server.url)
        client.wait_healthy()
        before = STATS.snapshot()
        payload_warm = client.run(REQUEST)
        warm = leg_row("restart_resubmit", STATS.delta_since(before))

        checks["restart_reloads_store"] = warm["op_store_points_loaded"] == len(
            TEMP_GRID_K
        )
        checks["restart_serves_cache_hits"] = warm["op_cache_hits"] >= 1
        checks["restart_strictly_fewer_factorizations"] = (
            warm["factorizations"] < cold["factorizations"]
        )
        checks["restart_payload_identical"] = payload_warm == payload_cold

        # -- leg 3: PlanError -> HTTP 400 before any solve --------------
        before = STATS.snapshot()
        status = error_type = None
        try:
            client.submit(
                {
                    "circuit": {"netlist": NETLIST},
                    "plan": {"analysis": "TempSweep", "temperatures_k": []},
                }
            )
        except ServeError as exc:
            status, error_type = exc.status, exc.error_type
        reject = leg_row("reject", STATS.delta_since(before))
        checks["plan_error_maps_to_http_400"] = (status, error_type) == (
            400,
            "PlanError",
        )
        checks["rejected_before_any_solve"] = (
            reject["newton_solves"] == 0 and reject["factorizations"] == 0
        )
        server.stop()

    notes = (
        f"{len(TEMP_GRID_K)}-point sweep over a restart: cold leg "
        f"{cold['factorizations']} factorizations, warm leg "
        f"{warm['factorizations']} with {warm['op_cache_hits']} exact "
        f"hit(s) served from the reloaded store; payloads bit-identical "
        "across HTTP, the direct Session run, and the restart."
    )
    return ExperimentResult(
        experiment_id="service_warm_start",
        title="Simulation service: persistent warm start across restarts",
        columns=(
            "leg",
            "op_cache_hits",
            "op_cache_warm_starts",
            "op_cache_misses",
            "factorizations",
            "store_loaded",
            "store_written",
            "jobs_done",
            "jobs_rejected",
        ),
        rows=rows,
        checks=checks,
        notes=notes,
    )
