"""CSV export of experiment results.

Each experiment's regenerated table can be written to a CSV file so the
series can be re-plotted outside Python (the library ships no plotting
dependency by design).
"""

from __future__ import annotations

import csv
import os
from typing import Dict

from ..errors import ReproError
from .registry import ExperimentResult


def write_csv(result: ExperimentResult, directory: str) -> str:
    """Write one result as ``<directory>/<experiment_id>.csv``.

    Returns the written path.  The header row carries the column names;
    a trailing comment block records the notes and the check outcomes.
    """
    if not os.path.isdir(directory):
        raise ReproError(f"export directory {directory!r} does not exist")
    path = os.path.join(directory, f"{result.experiment_id}.csv")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.columns)
        for row in result.rows:
            writer.writerow(row)
        handle.write(f"# {result.title}\n")
        if result.notes:
            handle.write(f"# {result.notes}\n")
        for name, ok in result.checks.items():
            handle.write(f"# check {name}: {'PASS' if ok else 'FAIL'}\n")
    return path


def export_all(results: Dict[str, ExperimentResult], directory: str) -> Dict[str, str]:
    """Write every result; returns experiment id -> path."""
    return {name: write_csv(result, directory) for name, result in results.items()}
