"""Experiment runners: one module per paper artefact.

Every table and figure of the paper's evaluation has a runner that
regenerates its data and checks the shape criteria of DESIGN.md:

======================  =========================================
``fig1``                EG(T) model comparison (Fig. 1)
``fig5``                IC(VBE) family (Fig. 5)
``fig6``                characteristic straights C1/C2/C3 (Fig. 6)
``table1``              sensor vs computed temperatures (Table 1)
``fig8``                VREF(T): measured, S0, S1-S4 (Fig. 8)
``ablation_sensitivity``   E6/E7/E9 robustness claims
``ablation_current_ratio`` E8: the A = (kT2/q) ln X magnitude
``ablation_solver``        netlist vs behavioural cross-check
``startup_transient``      VDD-ramp startup of both reference cells
``psrr_vref``              PSRR(f) of the cell vs temperature (AC)
``loop_gain``              feedback-loop Bode plot with margins (AC)
``zout_vref``              output impedance vs frequency (AC)
``large_n``                1k+-unknown hierarchical netlists, sparse path
``service_warm_start``     HTTP service + persistent cache across restarts
======================  =========================================

Use :func:`run_experiment`/:func:`run_all` or ``python -m repro``.
"""

from .registry import EXPERIMENTS, ExperimentResult, run_all, run_experiment
from . import (  # noqa: F401  (imports register the runners)
    fig1_bandgap_models,
    fig2_bias_principle,
    fig5_ic_vbe_family,
    fig6_characteristic_straight,
    fig8_vref_curves,
    table1_die_temperature,
    ablations,
    sub1v_extension,
    startup_transient,
    psrr_vref,
    loop_gain,
    zout_vref,
    large_n,
    service_warm_start,
)
from .report import render_result, render_summary

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "run_experiment",
    "run_all",
    "render_result",
    "render_summary",
]
