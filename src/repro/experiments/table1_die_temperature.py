"""Table 1: sensor vs computed temperatures on five samples.

Reproduces the paper's Table 1: for each of five chips of a diffusion
lot, the difference ``T_measured - T_computed`` at the chamber points
T1 = 247 K, T2 = 297 K (reference, zero by construction) and T3 = 348 K.

Shape criteria (DESIGN.md E4): every T1 delta negative in the -1.5..-6.5
K band, every T3 delta positive in the +1.5..+7.5 K band, T2 exactly
zero, and the lot-average hot-side discrepancy exceeding the cold side —
the signature the paper attributes to self-heating plus the
amplification-stage offset.
"""

from __future__ import annotations

import numpy as np

from ..extraction.pipeline import run_analytical_extraction
from ..measurement.campaign import MeasurementCampaign
from ..measurement.samples import paper_lot
from ..parallel import parallel_map
from ..units import kelvin_to_celsius
from .registry import ExperimentResult, register

#: Chamber settings matching the paper's 247/297/348 K rows [C].
TABLE1_TEMPS_C = (-26.15, 23.85, 74.85)

#: The paper's published deltas, for side-by-side display.
PAPER_TABLE1 = {
    "T1": (-3.6, -4.53, -4.35, -4.61, -1.82),
    "T3": (6.61, 5.64, 3.99, 4.02, 7.28),
}


def _sample_deltas(task):
    """Worker: one chip's extraction + temperature deltas (picklable)."""
    index, sample = task
    sweep = sorted(set(TABLE1_TEMPS_C) | {-50.0, 50.0, 100.0})
    campaign = MeasurementCampaign(sample, include_noise=True, seed=10 + index)
    extraction = run_analytical_extraction(
        campaign, temps_c=sweep, point_temps_c=TABLE1_TEMPS_C
    )
    return sample.name, extraction.temperature_deltas_k


@register("table1")
def run() -> ExperimentResult:
    # Five independent chips: a batch — serial by default, REPRO_WORKERS
    # fans the lot out (each chip's seed is fixed, so results match).
    per_sample = parallel_map(_sample_deltas, list(enumerate(paper_lot())))
    rows = []
    deltas_t1, deltas_t3 = [], []
    for name, (d1, d2, d3) in per_sample:
        deltas_t1.append(d1)
        deltas_t3.append(d3)
        rows.append((name, round(d1, 2), round(d2, 2), round(d3, 2)))

    deltas_t1 = np.asarray(deltas_t1)
    deltas_t3 = np.asarray(deltas_t3)
    checks = {
        "t1_deltas_all_negative": bool(np.all(deltas_t1 < 0.0)),
        "t1_deltas_in_band": bool(
            np.all((-6.5 < deltas_t1) & (deltas_t1 < -1.5))
        ),
        "t2_delta_exactly_zero_by_construction": all(r[2] == 0.0 for r in rows),
        "t3_deltas_all_positive": bool(np.all(deltas_t3 > 0.0)),
        "t3_deltas_in_band": bool(np.all((1.5 < deltas_t3) & (deltas_t3 < 7.5))),
        "hot_side_exceeds_cold_side_on_average": float(
            np.mean(np.abs(deltas_t3))
        )
        > float(np.mean(np.abs(deltas_t1))),
    }
    notes = (
        "Paper rows: T1 deltas "
        + ", ".join(f"{v:+.2f}" for v in PAPER_TABLE1["T1"])
        + " K; T3 deltas "
        + ", ".join(f"{v:+.2f}" for v in PAPER_TABLE1["T3"])
        + " K.  Reproduced deltas come from the same mechanisms the paper "
        "names: die self-heating, the amplification-stage offset in the "
        "dVBE readout (which modifies the apparent dVBE slope by ~8%), "
        "and the temperature drift of the QB/QA bias-current ratio."
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Table 1 — T_measured - T_computed for five samples",
        columns=["sample", "dT1 [K]", "dT2 [K]", "dT3 [K]"],
        rows=rows,
        checks=checks,
        notes=notes,
    )
