"""PSRR(f) of the bandgap test cell at several chamber temperatures.

Supply rejection is the first of the cell's headline behavioural
metrics that only a frequency-domain analysis can produce: a unit AC
excitation on the sensed VDD rail propagates into ``vref`` through the
amplifier macro's rail-tracking output window, attenuated by the loop
gain — so PSRR is flat at ``|slope_rail| / (1 + T0)`` up to the loop
bandwidth and then *improves* as the amplifier pole rolls the supply
path off faster than the loop gain falls.

Anchor check (the acceptance criterion of this experiment): at the
lowest swept frequency the AC transfer must equal the *DC line
regulation* slope ``dVREF/dVDD`` computed by central finite differences
on two plain :func:`solve_dc` solves — the frequency-domain engine and
the DC engine must agree on the w -> 0 limit to within 0.5 dB.
"""

from __future__ import annotations

import numpy as np

from ..spice.ac import log_frequencies
from ..spice.plans import ACSweep, DCSweep
from ..spice.session import Session
from ..circuits.bandgap_cell import measure_vref
from ..units import celsius_to_kelvin
from .ac_common import build_psrr_cell
from .registry import ExperimentResult, register

#: Chamber temperatures, matching Table 1's rows [C].
PSRR_TEMPS_C = (-26.15, 23.85, 74.85)

#: Swept band [Hz].
PSRR_F_START, PSRR_F_STOP = 10.0, 1e7


def dc_line_regulation_db(
    temperature_k: float,
    delta_v: float = 1e-3,
    session: Session = None,
) -> float:
    """``-20 log10 |dVREF/dVDD|`` by finite differences on DC solves.

    One ``DCSweep`` of the supply source: both probe points share the
    session's system and the second warm-starts off the first.  Passing
    the experiment's own ``session`` lets the probe points warm-start
    from the AC sweep's already-cached operating point (the supply
    nudge is well inside the cache's warm-start band), so the
    finite-difference anchor costs no fresh gain-stepping ladder.
    """
    session = session or Session(build_psrr_cell)
    vdd = float(session.circuit.element("VDD").dc)
    sweep = session.run(
        DCSweep(
            source="VDD",
            values=(vdd - delta_v, vdd + delta_v),
            temperature_k=temperature_k,
        )
    )
    low, high = (measure_vref(point) for point in sweep.points)
    slope = (high - low) / (2.0 * delta_v)
    return -20.0 * float(np.log10(abs(slope)))


@register("psrr_vref")
def run() -> ExperimentResult:
    temps_k = tuple(celsius_to_kelvin(t) for t in PSRR_TEMPS_C)
    frequencies = log_frequencies(PSRR_F_START, PSRR_F_STOP, points_per_decade=4)

    # ONE session for the whole experiment: the three temperatures
    # warm-chain inside one ACSweep plan, and the DC line-regulation
    # anchor below rides the same solved-point cache.
    session = Session(build_psrr_cell)
    ac = session.run(
        ACSweep(frequencies_hz=tuple(frequencies), temperatures_k=temps_k)
    )
    results = ac.ac_results
    psrr_db = [-result.magnitude_db("vref") for result in results]

    rows = [
        (
            float(f"{frequency:.6g}"),
            round(float(psrr_db[0][i]), 2),
            round(float(psrr_db[1][i]), 2),
            round(float(psrr_db[2][i]), 2),
        )
        for i, frequency in enumerate(frequencies)
    ]

    # The w -> 0 anchor at the middle (room) temperature.
    fd_db = dc_line_regulation_db(temps_k[1], session=session)
    ac_low_db = float(psrr_db[1][0])

    low_band = frequencies <= 1e3
    checks = {
        "low_frequency_psrr_matches_dc_line_regulation_within_0p5db": bool(
            abs(ac_low_db - fd_db) < 0.5
        ),
        "psrr_flat_through_the_loop_bandwidth": bool(
            all(
                float(np.ptp(curve[low_band])) < 1.0 for curve in psrr_db
            )
        ),
        "psrr_improves_beyond_the_loop_crossover": bool(
            all(float(curve[-1]) > float(curve[0]) + 20.0 for curve in psrr_db)
        ),
        "psrr_exceeds_40db_everywhere": bool(
            all(float(np.min(curve)) > 40.0 for curve in psrr_db)
        ),
        "worst_case_rejection_is_the_low_frequency_floor": bool(
            all(
                float(np.min(curve)) > float(curve[0]) - 1.0 for curve in psrr_db
            )
        ),
    }
    notes = (
        f"DC line regulation at {PSRR_TEMPS_C[1]:.2f} C by finite "
        f"differences: {fd_db:.2f} dB; AC value at "
        f"{frequencies[0]:.0f} Hz: {ac_low_db:.2f} dB "
        f"(delta {abs(ac_low_db - fd_db) * 1e3:.3f} mdB).  The flat floor "
        "is |slope_rail|/(1+T0) — supply ripple entering through the "
        "amplifier's rail-tracking window, divided down by the loop — "
        "and rejection improves past the loop bandwidth because the "
        "amplifier pole rolls off the supply path itself."
    )
    return ExperimentResult(
        experiment_id="psrr_vref",
        title="PSRR(f) of the bandgap cell vs temperature (AC analysis)",
        columns=["f [Hz]"]
        + [f"PSRR@{t:+.0f}C [dB]" for t in PSRR_TEMPS_C],
        rows=rows,
        checks=checks,
        notes=notes,
    )
