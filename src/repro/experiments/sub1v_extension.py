"""Extension experiment: the sub-1V reference the paper motivates.

The paper's introduction cites references "operating down to 600 mV" as
the reason EG/XTI accuracy matters; its conclusion offers the test
structure "to prototype the design of more accurate low voltage
reference circuit".  This experiment closes that loop: a current-mode
sub-1V reference built from the same devices, with the same parasitic,
predicted with (a) the standard model card and (b) the in-situ extracted
card — the in-situ card must track the "fabricated" behaviour, rise and
all, while the standard card misses it.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..circuits.sub1v import Sub1VBandgap, Sub1VConfig
from ..extraction.pipeline import run_analytical_extraction, run_classical_extraction
from ..measurement.campaign import MeasurementCampaign
from ..measurement.samples import paper_lot
from ..parallel import parallel_map
from ..units import celsius_to_kelvin
from .registry import ExperimentResult, register

TEMPS_C = tuple(range(-55, 146, 20))


def _variant_curve(task) -> list:
    """Worker: sweep one model-card variant over the grid (picklable)."""
    config, temps_k = task
    model = Sub1VBandgap(config)
    return [model.vref(temp_k) for temp_k in temps_k]


@register("sub1v_extension")
def run() -> ExperimentResult:
    sample = paper_lot()[0]
    campaign = MeasurementCampaign(sample, include_noise=False)
    standard = run_classical_extraction(campaign).standard_card_couple
    extracted = run_analytical_extraction(
        campaign, correct_offset=True
    ).couple_computed_t.couple

    def config_for(couple, with_parasitic: bool) -> Sub1VConfig:
        params = replace(sample.bjt_params(), eg=couple[0], xti=couple[1])
        return Sub1VConfig(
            params=params,
            is_mismatch=sample.is_mismatch,
            substrate_unit=sample.substrate_unit() if with_parasitic else None,
        )

    true_couple = (sample.bjt_params().eg, sample.bjt_params().xti)
    temps_k = [celsius_to_kelvin(t) for t in TEMPS_C]
    # Three independent model-card variants over the same grid: a batch
    # (serial by default, REPRO_WORKERS fans it out).
    variants = [
        config_for(true_couple, with_parasitic=True),
        config_for(standard, with_parasitic=False),
        config_for(extracted, with_parasitic=True),
    ]
    curves = parallel_map(
        _variant_curve, [(config, temps_k) for config in variants]
    )
    fab, std, insitu = (np.asarray(curve) for curve in curves)
    rows = [
        (temp_c, round(f, 5), round(s, 5), round(i, 5))
        for temp_c, f, s, i in zip(TEMPS_C, fab, std, insitu)
    ]

    # Scalability: the same design retargeted to 600 mV.
    at_600 = Sub1VBandgap(variants[0]).scaled_to(0.600)
    v600 = at_600.vref(celsius_to_kelvin(25.0))

    checks = {
        "output_below_1v": bool(np.all(fab < 1.0)),
        "fabricated_rises_at_hot_end": fab[-1] - fab[len(fab) // 2] > 5e-3,
        "standard_card_misses_the_rise": abs(std[-1] - fab[-1]) > 5e-3,
        "insitu_card_tracks_fabricated": bool(
            np.max(np.abs(insitu - fab)) < 2e-3
        ),
        "retargets_to_600mv": abs(v600 - 0.600) < 1e-3,
    }
    notes = (
        f"Sub-1V current-mode reference at {fab[len(fab)//2]:.3f} V nominal; "
        f"standard-card prediction error at 145 C: "
        f"{1000.0 * abs(std[-1] - fab[-1]):.1f} mV; in-situ card worst error: "
        f"{1000.0 * float(np.max(np.abs(insitu - fab))):.2f} mV; the same "
        f"design retargeted to 600 mV gives VREF(25 C) = {v600:.4f} V."
    )
    return ExperimentResult(
        experiment_id="sub1v_extension",
        title="Extension — sub-1V reference prototyped with the extracted card",
        columns=["T [C]", "fabricated [V]", "std card [V]", "in-situ card [V]"],
        rows=rows,
        checks=checks,
        notes=notes,
    )
