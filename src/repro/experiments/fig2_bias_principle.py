"""Fig. 2: the bias principle of the test structure.

Fig. 2 is the paper's schematic of the method's core: two BJTs with an
emitter-area ratio above unity, forced to identical collector currents,
make their dVBE "directly proportional to absolute temperature".  This
experiment quantifies that principle on the simulated silicon:

* the PTAT linearity of dVBE(T) (residual from the best line through
  the origin),
* the accuracy of the eq. 16 thermometer round trip across the range,
* and its robustness to a gain-type error (IS mismatch), which cancels
  in the dVBE ratio.
"""

from __future__ import annotations

import numpy as np

from ..bjt.pair import MatchedPair
from ..bjt.parameters import BJTParameters
from ..extraction.temperature import computed_temperature
from .registry import ExperimentResult, register

TEMPS_K = np.linspace(223.15, 398.15, 8)
REFERENCE_K = 298.15
BIAS_A = 8.9e-6


@register("fig2")
def run() -> ExperimentResult:
    pair = MatchedPair(base_params=BJTParameters())
    mismatched = MatchedPair(base_params=BJTParameters(), is_mismatch=1.03)

    dvbe = np.array([pair.delta_vbe(t, BIAS_A) for t in TEMPS_K])
    dvbe_mm = np.array([mismatched.delta_vbe(t, BIAS_A) for t in TEMPS_K])
    ref_index = int(np.argmin(np.abs(TEMPS_K - REFERENCE_K)))

    rows = []
    errors, errors_mm = [], []
    for i, t in enumerate(TEMPS_K):
        computed = computed_temperature(
            float(dvbe[i]), float(dvbe[ref_index]), float(TEMPS_K[ref_index])
        )
        computed_mm = computed_temperature(
            float(dvbe_mm[i]), float(dvbe_mm[ref_index]), float(TEMPS_K[ref_index])
        )
        errors.append(computed - t)
        errors_mm.append(computed_mm - t)
        rows.append(
            (
                round(float(t), 2),
                round(1000.0 * float(dvbe[i]), 4),
                round(computed - float(t), 3),
                round(computed_mm - float(t), 3),
            )
        )

    # PTAT linearity: slope through the origin, residual in % of signal.
    slope = float(np.sum(dvbe * TEMPS_K) / np.sum(TEMPS_K**2))
    residual = dvbe - slope * TEMPS_K
    linearity_pct = 100.0 * float(np.max(np.abs(residual)) / dvbe[ref_index])

    errors = np.asarray(errors)
    errors_mm = np.asarray(errors_mm)
    checks = {
        "dvbe_is_ptat_to_better_than_1pct": linearity_pct < 1.0,
        "thermometer_round_trip_below_1k": float(np.max(np.abs(errors))) < 1.0,
        "is_mismatch_cancels_in_the_ratio": float(
            np.max(np.abs(errors_mm - errors))
        )
        < 0.05,
        "slope_matches_vt_ln_p": abs(slope - 1.7921e-4) < 5e-6,
    }
    notes = (
        f"dVBE slope {1e6 * slope:.2f} uV/K (ideal ln(8)*k/q = 179.21 uV/K); "
        f"worst PTAT residual {linearity_pct:.3f}% of dVBE(T2); worst eq. 16 "
        f"round-trip error {float(np.max(np.abs(errors))):.3f} K (device qb "
        "curvature only); a 3% IS mismatch moves the computed temperatures "
        f"by at most {float(np.max(np.abs(errors_mm - errors))) * 1000.0:.1f} mK "
        "— gain errors cancel in the ratio, which is what makes eq. 16 a "
        "usable thermometer."
    )
    return ExperimentResult(
        experiment_id="fig2",
        title="Fig. 2 — the equal-current pair as a PTAT thermometer",
        columns=["T [K]", "dVBE [mV]", "round-trip err [K]", "with 3% mismatch [K]"],
        rows=rows,
        checks=checks,
        notes=notes,
    )
