"""Experiment registry and result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError, ReproError
from ..parallel import (
    absorb_worker_telemetry,
    parallel_map,
    supervised_map,
    worker_telemetry,
)
from ..resilience import RunPolicy
from ..telemetry import tracer as _tele

#: Registered experiment runners, keyed by experiment id.
EXPERIMENTS: Dict[str, Callable[[], "ExperimentResult"]] = {}


@dataclass
class ExperimentResult:
    """Data regenerated for one paper artefact plus its shape checks.

    ``rows`` are the printable table rows (the same rows/series the
    paper reports); ``checks`` maps a shape-criterion name to whether it
    held; ``notes`` carries the paper-vs-measured commentary used by
    EXPERIMENTS.md.
    """

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Tuple]
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: str = ""

    @property
    def passed(self) -> bool:
        return all(self.checks.values()) if self.checks else True

    def failing_checks(self) -> List[str]:
        return [name for name, ok in self.checks.items() if not ok]


def register(experiment_id: str):
    """Decorator adding a runner to the registry."""

    def wrap(func: Callable[[], ExperimentResult]):
        if experiment_id in EXPERIMENTS:
            raise ReproError(f"duplicate experiment id {experiment_id!r}")
        EXPERIMENTS[experiment_id] = func
        return func

    return wrap


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one registered experiment."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ReproError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return runner()


def _run_attributed(name: str) -> ExperimentResult:
    """Worker: run one experiment, attributing any failure to its id.

    A raw exception escaping a process-pool worker loses the submitting
    call site (the traceback points into the pool plumbing), so a batch
    of twenty experiments used to fail without saying *which* one died.
    Wrapping here — inside the worker — bakes the experiment id into
    the exception message itself, which also survives pickling back to
    the parent (pickled exceptions keep their args, not their chained
    context).
    """
    try:
        return run_experiment(name)
    except ExperimentError:
        raise  # already attributed (e.g. an unknown-name error)
    except Exception as exc:
        raise ExperimentError(
            f"experiment {name!r} failed: {type(exc).__name__}: {exc}"
        ) from exc


def _run_attributed_task(task: Tuple[str, Optional[str]]):
    """Worker: :func:`_run_attributed` plus telemetry capture, so a
    fanned experiment's counters and spans ship home with its result."""
    name, trace_detail = task
    with worker_telemetry(trace_detail) as box:
        result = _run_attributed(name)
    return result, box


def run_experiments(
    names: Sequence[str],
    max_workers: Optional[int] = None,
    policy: Optional["RunPolicy"] = None,
) -> Dict[str, ExperimentResult]:
    """Run the named experiments, optionally fanning out over processes.

    Experiments are independent of each other, so the results are
    identical regardless of worker count; unknown names raise through
    :func:`run_experiment` before any work is dispatched, and a runner
    failure surfaces as :class:`~repro.errors.ExperimentError` carrying
    the failing experiment's id (see :func:`_run_attributed`).  Worker
    STATS counters and trace spans are merged back into this process
    (:func:`repro.parallel.absorb_worker_telemetry`), so fanned and
    serial batches report identical telemetry.

    With a :class:`~repro.resilience.RunPolicy` the batch runs
    supervised and the mapping's values become per-experiment
    :class:`~repro.resilience.Outcome` records (indexed by position in
    ``names``): one crashed figure no longer takes the rest of the
    regeneration run down with it, retryable failures are re-attempted
    per the policy, and the active fault-injection plan is honoured.
    """
    for name in names:
        if name not in EXPERIMENTS:
            run_experiment(name)  # raises with the known-experiment list
    detail = None if _tele.ACTIVE is None else _tele.ACTIVE.detail
    tasks = [(name, detail) for name in names]
    if policy is None:
        payloads = parallel_map(_run_attributed_task, tasks, max_workers=max_workers)
        results = []
        for result, box in payloads:
            absorb_worker_telemetry(box)
            results.append(result)
        return dict(zip(names, results))
    outcomes = supervised_map(
        _run_attributed_task, tasks, policy=policy, max_workers=max_workers
    )
    for outcome in outcomes:
        if outcome is not None and outcome.ok:
            result, box = outcome.value
            absorb_worker_telemetry(box)
            outcome.value = result
    return dict(zip(names, outcomes))


def run_all(max_workers: Optional[int] = None) -> Dict[str, ExperimentResult]:
    """Run every registered experiment in id order."""
    return run_experiments(sorted(EXPERIMENTS), max_workers=max_workers)
