"""Fig. 8: VREF(T) — measured vs model cards, and the RadjA improvement.

The paper's closing comparison:

* **measured** — the real cell: true device couple, substrate-leakage
  parasitic active, ADJ-trimmed amplifier.  Rises anomalously at high
  temperature.
* **S0** — simulation with the *standard model card*: the best-fitting
  couple frozen at the handbook XTI, and no parasitic model (the
  foundry card "does not point out" the effect).  A bell-ish curve that
  misses the rise.
* **S1..S4** — simulation with the model card extracted in-situ by the
  test structure (pad-corrected analytical method, which recovers the
  true couple) plus the in-situ-characterised parasitic, for RadjA in
  {0, 1.8k, 2.5k, 2.7k}.  S1 matches the measured rise; increasing
  RadjA progressively flattens the curve.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..circuits.bandgap_cell import BandgapCellConfig
from ..circuits.reference import BehaviouralBandgap
from ..circuits.trim import PAPER_RADJA_SWEEP_OHM
from ..extraction.pipeline import run_analytical_extraction, run_classical_extraction
from ..measurement.campaign import MeasurementCampaign
from ..measurement.samples import paper_lot
from ..parallel import parallel_map
from ..units import celsius_to_kelvin
from .registry import ExperimentResult, register

#: Fig. 8 x-axis [C].
FIG8_TEMPS_C = tuple(range(-80, 146, 15))


def _cell_config(sample, eg, xti, with_parasitic, radja=0.0) -> BandgapCellConfig:
    params = replace(sample.bjt_params(), eg=eg, xti=xti)
    return BandgapCellConfig(
        params=params,
        is_mismatch=sample.is_mismatch,
        substrate_unit=sample.substrate_unit() if with_parasitic else None,
        opamp_vos=0.0,  # ADJ-trimmed (the pads exist to null this)
        radja=radja,
    )


@register("fig8")
def run() -> ExperimentResult:
    sample = paper_lot()[0]
    campaign = MeasurementCampaign(sample, include_noise=False)

    standard = run_classical_extraction(campaign).standard_card_couple
    analytical = run_analytical_extraction(campaign, correct_offset=True)
    extracted = analytical.couple_computed_t.couple

    temps_k = [celsius_to_kelvin(t) for t in FIG8_TEMPS_C]
    true_couple = (sample.bjt_params().eg, sample.bjt_params().xti)

    # The six curve families are independent sweeps over the same
    # temperature grid — exactly the batch shape the parallel layer
    # handles.  Serial by default; REPRO_WORKERS fans them out.
    configs = [
        _cell_config(sample, *true_couple, with_parasitic=True),
        _cell_config(sample, *standard, with_parasitic=False),
    ] + [
        _cell_config(sample, *extracted, with_parasitic=True, radja=radja)
        for radja in PAPER_RADJA_SWEEP_OHM
    ]
    curves = parallel_map(_sweep_task, [(config, temps_k) for config in configs])
    measured, s0 = curves[0], curves[1]
    trimmed = dict(zip(PAPER_RADJA_SWEEP_OHM, curves[2:]))

    rows = []
    for i, temp_c in enumerate(FIG8_TEMPS_C):
        rows.append(
            (
                temp_c,
                round(measured[i], 5),
                round(s0[i], 5),
                round(trimmed[0.0][i], 5),
                round(trimmed[1.8e3][i], 5),
                round(trimmed[2.5e3][i], 5),
                round(trimmed[2.7e3][i], 5),
            )
        )

    hot = -1  # index of 145 C
    s1 = trimmed[0.0]
    spans = {r: v.max() - v.min() for r, v in trimmed.items()}
    checks = {
        "measured_rises_at_high_temperature": measured[hot] - measured[len(measured) // 2]
        > 10e-3,
        "s0_misses_the_rise": measured[hot] - s0[hot] > 10e-3,
        "s1_matches_measured_rise": bool(
            np.max(np.abs(np.asarray(s1) - np.asarray(measured))) < 5e-3
        ),
        "radja_progressively_flattens": spans[0.0]
        > spans[1.8e3]
        > spans[2.5e3]
        and spans[2.7e3] < spans[1.8e3],
        "radja_ordering_at_hot_end": s1[hot]
        > trimmed[1.8e3][hot]
        > trimmed[2.5e3][hot]
        > trimmed[2.7e3][hot],
        "vref_window_plausible": all(
            1.18 < v < 1.28 for row in rows for v in row[1:]
        ),
    }
    notes = (
        f"Standard card couple (C1 @ handbook XTI): EG={standard[0]:.4f}, "
        f"XTI={standard[1]:.2f}; analytical in-situ couple: "
        f"EG={extracted[0]:.4f}, XTI={extracted[1]:.3f} (true couple "
        f"EG={true_couple[0]:.4f}, XTI={true_couple[1]:.4f}).  "
        f"Measured-S0 gap at 145 C: "
        f"{1000.0 * (measured[hot] - s0[hot]):.1f} mV; max |S1-measured| = "
        f"{1000.0 * float(np.max(np.abs(np.asarray(s1) - np.asarray(measured)))):.2f} mV.  "
        "VREF spans per RadjA: "
        + ", ".join(f"{r/1e3:.1f}k: {1000.0*s:.1f} mV" for r, s in sorted(spans.items()))
    )
    return ExperimentResult(
        experiment_id="fig8",
        title="Fig. 8 — VREF(T): measured vs S0 and the RadjA sweep S1-S4",
        columns=[
            "T [C]",
            "measured [V]",
            "S0 std card [V]",
            "S1 RadjA=0 [V]",
            "S2 1.8k [V]",
            "S3 2.5k [V]",
            "S4 2.7k [V]",
        ],
        rows=rows,
        checks=checks,
        notes=notes,
    )


def _sweep(config: BandgapCellConfig, temps_k) -> np.ndarray:
    bandgap = BehaviouralBandgap(config)
    return np.array([bandgap.vref(t) for t in temps_k])


def _sweep_task(task) -> np.ndarray:
    """Worker: one (config, temperature grid) curve (picklable)."""
    config, temps_k = task
    return _sweep(config, temps_k)
