"""Loop gain and stability margins of the cell's amplifier feedback loop.

The classic broken-loop measurement, done where it does not disturb the
loading: solve the *closed* loop's DC operating point, then break the
loop at the amplifier *input* (the macro draws no input current, so
pinning the sense pair to the closed-loop values of ``p4``/``nb``
changes nothing else), excite the pinned pair with a unit AC signal and
read the difference the feedback network returns.  That return ratio
``L(jw)`` — rendered on a probe node by a gain ``-1`` VCVS so it is
positive real at DC — has the unity-gain crossover and -180 deg
crossing that define the phase and gain margins.

Three poles shape the profile: the amplifier macro's dominant pole, the
output pole (output resistance against the load capacitor) and the
far-out amplifier-input parasitic poles — enough phase accumulation for
a finite gain margin inside the sweep.
"""

from __future__ import annotations

import numpy as np

from ..spice.ac import log_frequencies
from ..spice.plans import ACSweep, OP
from ..spice.session import Session
from ..circuits.bandgap_cell import CellNodes, measure_vref
from .ac_common import LOOP_RETURN_NODE, build_loop_gain_cell, build_psrr_cell
from .registry import ExperimentResult, register

#: Swept band [Hz] — wide enough to reach the -180 deg crossing.
LOOP_F_START, LOOP_F_STOP = 10.0, 1e8


@register("loop_gain")
def run() -> ExperimentResult:
    # Closed-loop operating point: the values the broken loop is pinned at.
    nodes = CellNodes()
    closed_op = Session(build_psrr_cell, kwargs={"vdd_ac": 0.0}).run(OP()).op
    vref_dc = measure_vref(closed_op)
    p4_dc = closed_op.voltage(nodes.p4)
    nb_dc = closed_op.voltage(nodes.nb)

    frequencies = log_frequencies(LOOP_F_START, LOOP_F_STOP, points_per_decade=4)
    broken = Session(build_loop_gain_cell, args=(p4_dc, nb_dc))
    result = broken.run(ACSweep(frequencies_hz=tuple(frequencies))).ac_results[0]

    # The VCVS probe carries L(jw) directly (sign already folded in).
    magnitude_db = result.magnitude_db(LOOP_RETURN_NODE)
    phase_deg = result.phase_deg(LOOP_RETURN_NODE)

    crossover = result.crossover_frequency(LOOP_RETURN_NODE)
    phase_margin = result.phase_margin(LOOP_RETURN_NODE, sign=+1.0)
    gain_margin = result.gain_margin(LOOP_RETURN_NODE, sign=+1.0)
    vref_broken_dc = result.op.voltage(nodes.vref)

    rows = [
        (
            float(f"{frequency:.6g}"),
            round(float(magnitude_db[i]), 2),
            round(float(phase_deg[i]), 1),
        )
        for i, frequency in enumerate(frequencies)
    ]

    checks = {
        "dc_loop_gain_exceeds_40db": bool(magnitude_db[0] > 40.0),
        "loop_magnitude_monotonically_decreasing": bool(
            np.all(np.diff(magnitude_db) < 0.0)
        ),
        "low_frequency_phase_near_zero": bool(abs(float(phase_deg[0])) < 10.0),
        "unity_crossover_inside_the_sweep": crossover is not None,
        "phase_margin_healthy": phase_margin is not None
        and 30.0 < phase_margin < 90.0,
        "gain_margin_positive": gain_margin is not None and gain_margin > 6.0,
        "broken_loop_sits_at_the_closed_loop_operating_point": bool(
            abs(vref_broken_dc - vref_dc) < 1e-6
        ),
    }
    notes = (
        f"DC loop gain {float(magnitude_db[0]):.1f} dB; unity crossover "
        f"{0.0 if crossover is None else crossover / 1e3:.1f} kHz; phase "
        f"margin {float('nan') if phase_margin is None else phase_margin:.1f} "
        f"deg; gain margin "
        f"{float('nan') if gain_margin is None else gain_margin:.1f} dB.  "
        f"The broken loop's reference settles at {vref_broken_dc:.9f} V "
        f"against the closed loop's {vref_dc:.9f} V — the input-pinned "
        "break reproduces the operating point to solver tolerance, so "
        "the linearisation is the closed loop's own."
    )
    return ExperimentResult(
        experiment_id="loop_gain",
        title="Loop gain and stability margins of the bandgap feedback loop",
        columns=["f [Hz]", "|L| [dB]", "arg L [deg]"],
        rows=rows,
        checks=checks,
        notes=notes,
    )
