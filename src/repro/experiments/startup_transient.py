"""Startup-transient experiment: VDD ramp into the reference cells.

The scenario the DC chapters cannot cover: sub-1V-era references have a
notorious degenerate startup state (zero branch current is consistent
with a dead amplifier loop), so every practical design must demonstrate
that a ramping supply carries the loop to the *bandgap* operating point
and nowhere else.  This experiment ramps VDD into (a) the paper's Fig. 3
test cell and (b) the sub-1V current-mode variant its conclusion
motivates, integrates through the snap-on with adaptive trapezoidal
timestepping, and asserts:

* every accepted timestep's Newton re-solve converged (no step was
  accepted on a stale iterate);
* the settled reference equals the powered-up DC operating point of the
  same netlist to within 1 mV — the time-domain trajectory lands on the
  equilibrium the DC solver finds by a completely different route;
* settling happens while the simulation window still has margin, and
  the pre-ramp output is dead (the loop really was off at VDD = 0).
"""

from __future__ import annotations

from ..circuits.startup import (
    StartupRampConfig,
    Sub1VStartupConfig,
    build_startup_bandgap_cell,
    build_startup_sub1v_cell,
)
from ..spice.plans import OP, Transient
from ..spice.session import Session
from ..spice.transient import TransientOptions
from ..units import kelvin_to_celsius
from .registry import ExperimentResult, register

#: Ambient temperature of the run [K] (27 C, SPICE's default).
TEMPERATURE_K = 300.15
#: Simulated time past the end of the VDD ramp [s].
POST_RAMP_WINDOW = 150e-6
#: |settled - DC| acceptance band [V].
DC_MATCH_TOL = 1e-3
#: Settling band around the DC value [V].
SETTLE_TOL = 1e-3
#: Residual ceiling certifying a step's Newton solve converged; the
#: solver's own criteria are ~1e-12 A / 1e-8 V, so anything near this
#: ceiling means a step was accepted on a stale iterate.
STEP_RESIDUAL_TOL = 1e-6


def _run_variant(name, build, ramp):
    # One session per startup variant: the transient integration and
    # the post-ramp DC cross-check share the engine lifecycle (the two
    # solves are keyed by different pinned times, so the dead pre-ramp
    # state can never warm-start — let alone answer — the powered one).
    session = Session(build, args=(ramp,), temperature_k=TEMPERATURE_K)
    t_end = ramp.t_on + POST_RAMP_WINDOW
    options = TransientOptions(method="trap", adaptive=True)
    result = session.run(
        Transient(t_stop=t_end, temperature_k=TEMPERATURE_K, options=options)
    ).result
    dc = session.run(OP(temperature_k=TEMPERATURE_K, time=t_end)).op
    vref_dc = dc.voltage("vref")
    vref_settled = float(result.voltage("vref")[-1])
    settle = result.settling_time("vref", SETTLE_TOL, final_value=vref_dc)
    # Mid-delay sample when there is a delay, else the t=0 point (the
    # supply is 0 V either way) — always a measured value.
    if ramp.delay > 0.0:
        vref_preramp = result.voltage_at("vref", 0.5 * ramp.delay)
    else:
        vref_preramp = float(result.voltage("vref")[0])
    return {
        "name": name,
        "result": result,
        "vref_dc": vref_dc,
        "vref_settled": vref_settled,
        "error_v": abs(vref_settled - vref_dc),
        "settle_s": settle,
        "t_end": t_end,
        "vref_preramp": vref_preramp,
        "overshoot_v": result.overshoot("vref", vref_dc),
    }


@register("startup_transient")
def run() -> ExperimentResult:
    variants = [
        _run_variant(
            "bandgap_cell", build_startup_bandgap_cell, StartupRampConfig()
        ),
        _run_variant("sub1v", build_startup_sub1v_cell, Sub1VStartupConfig()),
    ]

    rows = []
    checks = {}
    for v in variants:
        res = v["result"]
        rows.append(
            (
                v["name"],
                res.accepted_steps,
                res.rejected_lte,
                round(v["settle_s"] * 1e6, 2),
                round(v["vref_settled"], 6),
                round(v["vref_dc"], 6),
                round(v["error_v"] * 1e3, 4),
            )
        )
        name = v["name"]
        # Audit the recorded residual of every accepted step: each must
        # sit orders of magnitude below the ceiling, or a step was
        # accepted on a non-converged iterate.
        checks[f"{name}_every_step_converged"] = all(
            r < STEP_RESIDUAL_TOL for r in res.step_residuals
        )
        checks[f"{name}_settles_to_dc_within_1mv"] = v["error_v"] < DC_MATCH_TOL
        checks[f"{name}_settles_inside_window"] = v["settle_s"] < 0.9 * v["t_end"]
        checks[f"{name}_dead_before_ramp"] = abs(v["vref_preramp"]) < 5e-3
    checks["sub1v_output_below_1v"] = variants[1]["vref_settled"] < 1.0

    cell, sub1v = variants
    notes = (
        f"Adaptive trapezoidal VDD-ramp startup at "
        f"{kelvin_to_celsius(TEMPERATURE_K):.0f} C. Test cell: settled "
        f"{cell['vref_settled']:.4f} V vs DC {cell['vref_dc']:.4f} V "
        f"({cell['error_v'] * 1e6:.1f} uV apart) in "
        f"{cell['settle_s'] * 1e6:.0f} us / {cell['result'].accepted_steps} "
        f"accepted steps. Sub-1V variant: settled {sub1v['vref_settled']:.4f} V "
        f"({sub1v['error_v'] * 1e6:.1f} uV from DC) in "
        f"{sub1v['settle_s'] * 1e6:.0f} us — the loop leaves the dead "
        f"pre-ramp state and lands on the bandgap equilibrium in both "
        f"topologies."
    )
    return ExperimentResult(
        experiment_id="startup_transient",
        title="Startup — VDD-ramp transient of the bandgap and sub-1V cells",
        columns=[
            "variant",
            "steps",
            "rejected",
            "settle [us]",
            "vref(T) [V]",
            "vref(DC) [V]",
            "error [mV]",
        ],
        rows=rows,
        checks=checks,
        notes=notes,
    )
