"""Large-N sparse-path workload: generated hierarchical netlists.

The witness experiment for ROADMAP item 4: a generated ``.SUBCKT``
array with >1k unknowns that *provably* routes through the sparse
pipeline (CSC assembly -> splu), solved cold and then re-solved across
a temperature grid so the solved-point cache and the sparse-tuned
stale-LU policy both show up in the counters.

Three workloads, each with its own counter delta:

* ``bandgap_array`` — 120 nonlinear cells (~1082 unknowns), cold OP.
  Gates: sparse assemblies/factorizations > 0, **zero** sparse format
  conversions (the CSC end-to-end claim), and all identical cells solve
  to the same output voltage (flattening correctness at scale).
* ``temp_resweep`` — the same session swept over 3 temperatures; the
  cache must warm-start the neighbouring points.
* ``resistor_ladder`` — ~1k-unknown linear chain; exactly one
  factorization, no Newton ladder.

The rows land in the benchmark campaign index (``--bench-record``), so
``--bench-check`` gates every counter here against the committed
baseline on each CI push.
"""

from __future__ import annotations

from ..spice.hierarchy import bandgap_array, resistor_ladder
from ..spice.parser import parse_netlist
from ..spice.plans import OP, TempSweep
from ..spice.session import Session
from ..spice.stats import STATS
from .registry import ExperimentResult, register

#: Cells in the nonlinear array (~9 unknowns each + supply row).
ARRAY_CELLS = 120
#: Sections in the linear ladder (~2 unknowns each).
LADDER_SECTIONS = 500
#: Temperature grid for the warm-start leg [K].
TEMP_GRID_K = (280.15, 300.15, 320.15)


@register("large_n")
def run() -> ExperimentResult:
    rows = []
    checks = {}

    def counter_row(label, size, delta):
        rows.append(
            (
                label,
                size,
                delta["iterations"],
                delta["factorizations"],
                delta["sparse_factorizations"],
                delta["lu_reuses"],
                delta["sparse_conversions"],
            )
        )
        return delta

    # -- nonlinear array, cold ------------------------------------------
    circuit = parse_netlist(bandgap_array(cells=ARRAY_CELLS))
    session = Session(circuit)
    size = session.system.size
    before = STATS.snapshot()
    op = session.run(OP())
    delta = counter_row("bandgap_array", size, STATS.delta_since(before))

    outputs = [op.voltage(f"o{i}") for i in range(ARRAY_CELLS)]
    spread = max(outputs) - min(outputs)
    checks["array_crosses_1k_unknowns"] = size >= 1000
    checks["routes_through_sparse_assembly"] = delta["sparse_assemblies"] > 0
    checks["routes_through_sparse_splu"] = delta["sparse_factorizations"] > 0
    checks["zero_sparse_format_conversions"] = delta["sparse_conversions"] == 0
    checks["identical_cells_solve_identically"] = spread < 1e-9
    checks["stale_lu_reuse_engages_at_scale"] = delta["lu_reuses"] > 0

    # -- same session, temperature re-sweep -----------------------------
    before = STATS.snapshot()
    session.run(TempSweep(temperatures_k=TEMP_GRID_K))
    delta = counter_row("temp_resweep", size, STATS.delta_since(before))
    checks["resweep_warm_starts_from_cache"] = (
        delta["op_cache_warm_starts"] + delta["op_cache_hits"] > 0
    )
    checks["resweep_zero_sparse_conversions"] = delta["sparse_conversions"] == 0

    # -- linear ladder ---------------------------------------------------
    ladder = parse_netlist(resistor_ladder(sections=LADDER_SECTIONS))
    ladder_session = Session(ladder)
    ladder_size = ladder_session.system.size
    before = STATS.snapshot()
    ladder_session.run(OP())
    delta = counter_row("resistor_ladder", ladder_size, STATS.delta_since(before))
    checks["ladder_crosses_1k_unknowns"] = ladder_size >= 1000
    checks["linear_ladder_factors_once"] = delta["factorizations"] == 1

    notes = (
        f"{ARRAY_CELLS}-cell array = {size} unknowns, cell-output spread "
        f"{spread:.2e} V; ladder = {ladder_size} unknowns.  All sparse "
        "solves hand splu CSC directly (conversion counter pinned at 0)."
    )
    return ExperimentResult(
        experiment_id="large_n",
        title="Large-N hierarchical netlists through the sparse pipeline",
        columns=(
            "workload",
            "unknowns",
            "iterations",
            "factorizations",
            "sparse_factorizations",
            "lu_reuses",
            "sparse_conversions",
        ),
        rows=rows,
        checks=checks,
        notes=notes,
    )
