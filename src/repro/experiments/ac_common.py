"""Shared circuit recipes of the AC small-signal experiment family.

The three frequency-domain experiments (``psrr_vref``, ``loop_gain``,
``zout_vref``) probe the *same* AC-ready variant of the paper's Fig. 3
test cell, so its recipe lives here once:

* the amplifier senses a real ``vdd`` rail (the PSRR path: supply
  ripple couples into the output through the macro's rail-tracking
  window), drives the reference through a finite output resistance and
  carries a single dominant open-loop pole;
* the reference node carries a load/compensation capacitor and the
  amplifier inputs small parasitic capacitors — the poles that shape
  the loop's phase profile;
* the PNPs get representative junction capacitances (``CJE``/``CJC``/
  ``TF`` on top of the DC card — the DC-only experiments keep the
  historic zero-capacitance card, which this module never touches).

All builders are module-level functions of plain-data arguments, i.e.
picklable recipes for :class:`repro.spice.session.Session` /
:class:`repro.spice.session.SessionRecipe`.
"""

from __future__ import annotations

from dataclasses import replace

from ..bjt.parameters import PAPER_PNP_SMALL
from ..circuits.bandgap_cell import BandgapCellConfig, CellNodes, build_bandgap_cell
from ..spice.elements import VCVS, Capacitor, CurrentSource, VoltageSource
from ..spice.netlist import Circuit

#: The sensed supply rail (same node name as the startup experiments).
SUPPLY_NODE = "vdd"
#: DC supply the AC experiments linearise around [V].
VDD_DC = 5.0
#: Amplifier output resistance [ohm] — with the load capacitor this is
#: the output pole of the loop.
AMP_ROUT = 10e3
#: Load/compensation capacitor on the reference output [F].
C_LOAD = 100e-12
#: Parasitic capacitance on each amplifier input node [F] (the
#: far-out poles that eventually bring the loop phase past -180 deg).
C_PARASITIC = 5e-12
#: Dominant open-loop pole of the amplifier macro [Hz].
AMP_POLE_HZ = 100.0
#: Node carrying the loop's return ratio in the broken-loop circuit.
LOOP_RETURN_NODE = "lret"

#: The Fig. 3 PNP card with the charge-storage subset filled in:
#: ~40 fF B-E / ~25 fF B-C zero-bias depletion for the 6 um^2 unit
#: device (QB scales by its area ratio) and a 400 ps transit time.
AC_PNP_PARAMS = replace(PAPER_PNP_SMALL, cje=40e-15, cjc=25e-15, tf=400e-12)


def ac_cell_config() -> BandgapCellConfig:
    """The nominal cell configuration with the AC-enabled device card."""
    return BandgapCellConfig(params=AC_PNP_PARAMS)


def _add_output_capacitors(circuit: Circuit, output_node: str) -> None:
    nodes = CellNodes()
    circuit.add(Capacitor("CLOAD", output_node, "0", C_LOAD))
    circuit.add(Capacitor("CP4", nodes.p4, "0", C_PARASITIC))
    circuit.add(Capacitor("CNB", nodes.nb, "0", C_PARASITIC))


def build_psrr_cell(vdd_ac: float = 1.0) -> Circuit:
    """The closed-loop cell with a unit AC excitation on the supply.

    With ``ac_mag = 1`` on VDD, the ``vref`` phasor IS the supply-to-
    output transfer, so PSRR in dB is just ``-magnitude_db("vref")``.
    """
    circuit = build_bandgap_cell(
        ac_cell_config(),
        supply_node=SUPPLY_NODE,
        amp_output_resistance=AMP_ROUT,
        amp_pole_hz=AMP_POLE_HZ,
    )
    circuit.add(VoltageSource("VDD", SUPPLY_NODE, "0", VDD_DC, ac_mag=vdd_ac))
    _add_output_capacitors(circuit, CellNodes().vref)
    return circuit


def build_zout_cell() -> Circuit:
    """The closed-loop cell with a unit AC current pushed into ``vref``.

    The ``vref`` phasor is then the output impedance in ohms.
    """
    circuit = build_psrr_cell(vdd_ac=0.0)
    circuit.add(CurrentSource("ITEST", "0", CellNodes().vref, 0.0, ac_mag=1.0))
    return circuit


def build_loop_gain_cell(p4_dc: float, nb_dc: float) -> Circuit:
    """The cell with the feedback loop broken at the amplifier input.

    The amplifier senses a test pair ``(tp, tn)`` pinned at the
    *closed-loop* DC values of ``p4``/``nb`` instead of the real branch
    tops; since the macro's inputs draw no current, nothing else in the
    circuit notices — the amplifier still drives ``vref`` through its
    output resistance into the load capacitor and the feedback network,
    so the broken circuit linearises at the closed loop's own operating
    point with all loading intact (the reason the loop is NOT broken at
    the output: the network's input impedance loads the amplifier's
    output resistance, and an output break would lose that divider).

    A unit AC excitation on ``tp`` walks the loop once —
    ``vdiff -> amplifier -> network -> (p4 - nb)`` — and a gain ``-1``
    VCVS renders the returned difference on :data:`LOOP_RETURN_NODE`,
    so the node phasor there IS the negative-feedback return ratio
    ``L(jw)`` (positive real at DC).  The VCVS control pins draw no
    current and its output drives nothing, so it observes without
    perturbing.
    """
    nodes = CellNodes()
    circuit = build_bandgap_cell(
        ac_cell_config(),
        supply_node=SUPPLY_NODE,
        amp_output_resistance=AMP_ROUT,
        amp_pole_hz=AMP_POLE_HZ,
        amp_inputs=("tp", "tn"),
    )
    circuit.add(VoltageSource("VDD", SUPPLY_NODE, "0", VDD_DC))
    _add_output_capacitors(circuit, nodes.vref)
    circuit.add(VoltageSource("VTP", "tp", "0", p4_dc, ac_mag=1.0))
    circuit.add(VoltageSource("VTN", "tn", "0", nb_dc))
    circuit.add(
        VCVS("ELOOP", LOOP_RETURN_NODE, "0", nodes.p4, nodes.nb, gain=-1.0)
    )
    return circuit
