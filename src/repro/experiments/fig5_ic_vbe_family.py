"""Fig. 5: the measured IC(VBE) family from -50.88 C to 126.9 C.

Runs the single-BJT Gummel campaign at the paper's eight temperatures
and checks the family's shape: the current window spans the paper's
1e-14..1e-2 A decades, curves shift left by ~2 mV/K, and the top decade
rolls off from series resistance.
"""

from __future__ import annotations

import numpy as np

from ..measurement.campaign import MeasurementCampaign, PAPER_FIG5_TEMPS_C
from ..measurement.samples import paper_lot
from .registry import ExperimentResult, register


@register("fig5")
def run() -> ExperimentResult:
    sample = paper_lot()[0]
    campaign = MeasurementCampaign(sample, include_noise=True, seed=5)
    curves = campaign.measure_gummel_family(points=241)

    rows = []
    slice_points = {}
    for curve in curves:
        positive = curve.ic_a > 0.0
        ic = curve.ic_a[positive]
        vbe_at_1ua = _vbe_at(curve, 1e-6)
        slice_points[curve.nominal_celsius] = vbe_at_1ua
        rows.append(
            (
                curve.nominal_celsius,
                float(ic.min()),
                float(ic.max()),
                curve.decades_spanned(),
                vbe_at_1ua,
            )
        )

    all_ic = np.concatenate([c.ic_a[c.ic_a > 0.0] for c in curves])
    # Left shift between the extreme temperatures at IC = 1 uA.
    t_span = PAPER_FIG5_TEMPS_C[-1] - PAPER_FIG5_TEMPS_C[0]
    shift_mv_per_k = (
        1000.0
        * (slice_points[PAPER_FIG5_TEMPS_C[0]] - slice_points[PAPER_FIG5_TEMPS_C[-1]])
        / t_span
    )
    # Series-resistance roll-off: the top of the hottest curve gains less
    # than an ideal 60 mV/decade slope would predict.
    hottest = curves[-1]
    top = hottest.ic_a[-1]
    ideal_top = hottest.ic_a[-41] * 10.0 ** (
        (hottest.vbe_v[-1] - hottest.vbe_v[-41]) / 0.0857
    )

    checks = {
        "family_spans_paper_decades": bool(all_ic.min() < 1e-13 < 1e-3 < all_ic.max()),
        "curves_shift_left_about_2mv_per_k": 1.5 <= shift_mv_per_k <= 2.5,
        "hotter_curves_sit_left": all(
            slice_points[a] > slice_points[b]
            for a, b in zip(PAPER_FIG5_TEMPS_C, PAPER_FIG5_TEMPS_C[1:])
        ),
        "series_resistance_rolloff_visible": top < 0.5 * ideal_top,
        "eight_paper_temperatures": len(curves) == 8,
    }
    notes = (
        f"IC window {all_ic.min():.2e}..{all_ic.max():.2e} A "
        "(paper axis: 1e-14..1e-2 A); left shift "
        f"{shift_mv_per_k:.2f} mV/K at IC=1 uA."
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="Fig. 5 — IC(VBE) family over temperature",
        columns=["T [C]", "IC min [A]", "IC max [A]", "decades", "VBE@1uA [V]"],
        rows=rows,
        checks=checks,
        notes=notes,
    )


def _vbe_at(curve, ic_target: float) -> float:
    positive = curve.ic_a > 0.0
    ic = curve.ic_a[positive]
    vbe = curve.vbe_v[positive]
    order = np.argsort(ic)
    return float(np.interp(np.log(ic_target), np.log(ic[order]), vbe[order]))
