"""Fig. 1: temperature models of the silicon energy band gap.

Regenerates the five EG(T) curves with the paper's coefficient sets over
0-450 K and checks: the curve ordering, the ~22 meV EG(0) disagreement
between EG5 and EG2, the extrapolated EG0 sitting above every model, and
the up-to-~90 meV worst case once bandgap narrowing is included.
"""

from __future__ import annotations

import numpy as np

from ..physics.bandgap import EG1_REFERENCE_K, paper_models
from ..physics.narrowing import SI_EMITTER_NARROWING_EV
from .registry import ExperimentResult, register

#: Fig. 1 x-axis sampling [K].
FIG1_TEMPS_K = np.arange(0.0, 451.0, 25.0)


@register("fig1")
def run() -> ExperimentResult:
    models = paper_models()
    order = ["EG1", "EG2", "EG3", "EG4", "EG5"]
    rows = []
    for t in FIG1_TEMPS_K:
        row = [float(t)]
        for name in order:
            if name == "EG1":
                row.append(float(models[name].eg(t)))
            else:
                row.append(float(models[name].eg(t)))
        rows.append(tuple(row))

    eg0_extrapolated = models["EG5"].extrapolated_eg0(EG1_REFERENCE_K)
    spread_mev = 1000.0 * (
        models["EG5"].eg_at_zero() - models["EG2"].eg_at_zero()
    )
    # The paper's "up to 90 mV": extrapolated EG0 against the lowest
    # model's EG(0), plus the silicon emitter narrowing.
    worst_mev = 1000.0 * (
        eg0_extrapolated - models["EG2"].eg_at_zero() + SI_EMITTER_NARROWING_EV
    )
    at_zero = {name: models[name].eg_at_zero() for name in order}

    checks = {
        "eg5_minus_eg2_at_zero_about_22mev": 21.0 <= spread_mev <= 23.0,
        # EG1 is the linearisation itself, so its intercept *is* EG0;
        # the claim is about the physical models EG2..EG5.
        "eg0_extrapolation_above_every_model": all(
            eg0_extrapolated > at_zero[name] for name in ("EG2", "EG3", "EG4", "EG5")
        ),
        "eg2_is_lowest_at_room_temperature": min(
            order, key=lambda n: float(models[n].eg(300.0))
        )
        == "EG2",
        "worst_case_with_narrowing_near_90mev": 70.0 <= worst_mev <= 100.0,
        "all_curves_inside_fig1_window": all(
            1.05 < v < 1.23 for row in rows for v in row[1:]
        ),
    }
    notes = (
        f"EG(0): "
        + ", ".join(f"{n}={at_zero[n]:.4f} eV" for n in order)
        + f"; EG0 (linear extrapolation from {EG1_REFERENCE_K:.0f} K) = "
        f"{eg0_extrapolated:.4f} eV; EG5(0)-EG2(0) = {spread_mev:.1f} meV "
        f"(paper: ~22 meV); worst case incl. 45 meV narrowing = "
        f"{worst_mev:.0f} meV (paper: up to ~90 meV)."
    )
    return ExperimentResult(
        experiment_id="fig1",
        title="Fig. 1 — EG(T) model comparison",
        columns=["T [K]"] + order,
        rows=rows,
        checks=checks,
        notes=notes,
    )
