"""Die-temperature computation from dVBE ratios (paper eqs. 16, 19-20).

The pair's ``dVBE`` is PTAT, so with the reference point ``T2``
measured externally once,

    T1 = T2 * dVBE(T1) / dVBE(T2)                      (eq. 16)

gives the *die* temperature at every other chamber point.  When the
two collector currents drift differently with temperature the corrected
form (eq. 19) divides by ``1 + (k*T2/q) * ln(X) / dVBE(T2)`` with the
ratio product ``X`` of eq. 20; the paper evaluates the correction
``A = (k*T2/q) ln X ~ 0.3 mV`` (0.45 % of dVBE) and concludes it is
weak — :func:`a_coefficient` reproduces that number.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from ..constants import thermal_voltage
from ..errors import ExtractionError
from ..measurement.dataset import DeltaVbeCurve


def current_ratio_x(
    ic_a_t1: float, ic_b_t1: float, ic_a_t2: float, ic_b_t2: float
) -> float:
    """Paper eq. 20: ``X = (IC1(T1) * IC2(T2)) / (IC1(T2) * IC2(T1))``.

    Branch 1 is QA, branch 2 is QB; ``X = 1`` whenever the branch
    currents track each other over temperature (even if unequal).
    """
    for value in (ic_a_t1, ic_b_t1, ic_a_t2, ic_b_t2):
        if value <= 0.0:
            raise ExtractionError("collector currents must be positive")
    return (ic_a_t1 * ic_b_t2) / (ic_a_t2 * ic_b_t1)


def a_coefficient(reference_k: float, x: float) -> float:
    """The correction voltage ``A = (k*T2/q) * ln X`` [V]."""
    if x <= 0.0:
        raise ExtractionError("X must be positive")
    return thermal_voltage(reference_k) * math.log(x)


def computed_temperature(
    delta_vbe: float,
    delta_vbe_ref: float,
    reference_k: float,
    x: float = 1.0,
) -> float:
    """Die temperature from a dVBE ratio (eq. 16; eq. 19 when x != 1).

    Parameters
    ----------
    delta_vbe:
        dVBE measured at the unknown temperature [V].
    delta_vbe_ref:
        dVBE measured at the reference temperature [V].
    reference_k:
        The one externally measured temperature T2 [K].
    x:
        The eq. 20 current-ratio product between the unknown point and
        the reference (1.0 = ideal equal-current bias).
    """
    if delta_vbe_ref <= 0.0 or delta_vbe <= 0.0:
        raise ExtractionError("dVBE readings must be positive")
    if reference_k <= 0.0:
        raise ExtractionError("reference temperature must be positive")
    denominator = delta_vbe_ref * (1.0 + a_coefficient(reference_k, x) / delta_vbe_ref)
    return reference_k * delta_vbe / denominator


def computed_temperatures_for_curve(
    curve: DeltaVbeCurve,
    reference_k: float = 297.0,
    x_values: Sequence[float] = None,
) -> np.ndarray:
    """Computed die temperatures for every point of a pair dataset [K].

    The reference dVBE is taken at the point whose *sensor* reading is
    closest to ``reference_k`` — exactly how the paper anchors at
    T2 = 25 C and computes T1 and T3 from eq. 16.
    """
    ref_index = curve.nearest_index(reference_k)
    delta_ref = float(curve.delta_vbe_v[ref_index])
    t_ref = float(curve.sensor_temperatures_k[ref_index])
    if x_values is None:
        x_values = np.ones(curve.delta_vbe_v.shape[0])
    x_values = np.asarray(x_values, float)
    if x_values.shape != curve.delta_vbe_v.shape:
        raise ExtractionError("x array must match the curve")
    return np.array(
        [
            computed_temperature(float(d), delta_ref, t_ref, x=float(x))
            for d, x in zip(curve.delta_vbe_v, x_values)
        ]
    )
