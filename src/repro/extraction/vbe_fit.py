"""Classical extraction: least-squares fit of VBE(T) (paper eq. 13).

"If VAR and VBE(T0) are known, EG and XTI can be determined directly
from VBE(T) using least square fit without iteration" — the model is
linear in the couple, so the fit is one ``lstsq`` call.  The returned
covariance makes the EG-XTI correlation quantitative: its correlation
coefficient sits above 0.99 for any realistic temperature range, which
is the algebraic face of the paper's "infinite number of EG and XTI
couples".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..constants import thermal_voltage
from ..errors import ExtractionError
from ..measurement.dataset import VbeTemperatureCurve
from .vbe_model import vbe_characteristic, vbe_reference_terms


@dataclass(frozen=True)
class FitResult:
    """Outcome of a classical VBE(T) fit."""

    eg: float
    xti: float
    reference_k: float
    vbe_ref: float
    residual_rms_v: float
    covariance: np.ndarray

    @property
    def correlation(self) -> float:
        """EG-XTI correlation coefficient (|rho| ~ 1: inseparable)."""
        cov = self.covariance
        denom = np.sqrt(cov[0, 0] * cov[1, 1])
        if denom == 0.0:
            return 0.0
        return float(cov[0, 1] / denom)

    def confidence_ellipse(self, n_sigma: float = 1.0):
        """The (EG, XTI) confidence ellipse: ``(width, height, angle_rad)``.

        Principal-axis lengths (full widths, ``2 * n_sigma * sqrt(eig)``)
        and the rotation of the major axis from the EG axis.  For any
        realistic temperature range the ellipse is a sliver — its aspect
        ratio is the geometric face of the paper's "characteristic
        straight" (the major axis *is* the straight, locally).
        """
        if n_sigma <= 0.0:
            raise ExtractionError("n_sigma must be positive")
        eigenvalues, eigenvectors = np.linalg.eigh(self.covariance)
        order = np.argsort(eigenvalues)[::-1]
        eigenvalues = eigenvalues[order]
        major = eigenvectors[:, order[0]]
        width = 2.0 * n_sigma * float(np.sqrt(max(eigenvalues[0], 0.0)))
        height = 2.0 * n_sigma * float(np.sqrt(max(eigenvalues[1], 0.0)))
        angle = float(np.arctan2(major[1], major[0]))
        return width, height, angle

    def predict(self, temperature_k: float, ic=None, ic_ref=None) -> float:
        """Model VBE at a temperature using the fitted couple [V]."""
        return vbe_characteristic(
            temperature_k,
            self.eg,
            self.xti,
            vbe_ref=self.vbe_ref,
            reference_k=self.reference_k,
            ic=ic,
            ic_ref=ic_ref,
        )


def _design_rows(temps, vbes, currents, reference_index):
    t0 = temps[reference_index]
    v0 = vbes[reference_index]
    i0 = None if currents is None else currents[reference_index]
    rows, targets = [], []
    for i, (t, v) in enumerate(zip(temps, vbes)):
        if i == reference_index:
            continue
        a, b = vbe_reference_terms(t, t0)
        y = v - (t / t0) * v0
        if currents is not None:
            y -= thermal_voltage(t) * np.log(currents[i] / i0)
        rows.append((a, b))
        targets.append(y)
    return np.array(rows), np.array(targets), t0, v0


def fit_vbe_characteristic(
    temperatures_k: Sequence[float],
    vbe_v: Sequence[float],
    ic: float = None,
    reference_k: float = None,
    currents_a: Sequence[float] = None,
) -> FitResult:
    """Fit (EG, XTI) to one VBE(T) characteristic.

    Parameters
    ----------
    ic:
        Constant collector current (informational; the constant-current
        fit does not need its value).
    reference_k:
        Anchor temperature; defaults to the point closest to 298 K, as
        the paper anchors at T2 = 25 C.
    currents_a:
        Per-point collector currents when the bias was not constant.
    """
    temps = np.asarray(temperatures_k, dtype=float)
    vbes = np.asarray(vbe_v, dtype=float)
    if temps.shape != vbes.shape:
        raise ExtractionError("temperature and VBE arrays must match")
    if temps.size < 3:
        raise ExtractionError("need at least three points to fit two parameters")
    if np.any(temps <= 0.0):
        raise ExtractionError("temperatures must be positive")
    currents = None if currents_a is None else np.asarray(currents_a, dtype=float)
    if currents is not None and currents.shape != temps.shape:
        raise ExtractionError("current array must match the temperatures")

    if reference_k is None:
        reference_index = int(np.argmin(np.abs(temps - 298.15)))
    else:
        reference_index = int(np.argmin(np.abs(temps - reference_k)))
    design, target, t0, v0 = _design_rows(temps, vbes, currents, reference_index)

    solution, residuals, rank, _ = np.linalg.lstsq(design, target, rcond=None)
    if rank < 2:
        raise ExtractionError("degenerate fit: temperatures do not separate EG/XTI")
    eg, xti = float(solution[0]), float(solution[1])
    predicted = design @ solution
    residual = target - predicted
    dof = max(len(target) - 2, 1)
    sigma_sq = float(residual @ residual) / dof
    covariance = sigma_sq * np.linalg.inv(design.T @ design)
    return FitResult(
        eg=eg,
        xti=xti,
        reference_k=t0,
        vbe_ref=v0,
        residual_rms_v=float(np.sqrt(np.mean(residual**2))),
        covariance=covariance,
    )


def fit_vbe_curves(
    curves: List[VbeTemperatureCurve],
    reference_k: float = None,
) -> List[FitResult]:
    """Fit each constant-current curve of a measured set."""
    if not curves:
        raise ExtractionError("no curves to fit")
    return [
        fit_vbe_characteristic(
            curve.temperatures_k,
            curve.vbe_v,
            ic=curve.collector_current_a,
            reference_k=reference_k,
        )
        for curve in curves
    ]
