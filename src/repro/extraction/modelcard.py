"""SPICE model-card round trip for extracted couples.

The end product of either extraction method is a ``.MODEL`` card whose
``EG``/``XTI`` entries carry the extracted couple — the artefact the
designer drops into the simulator to get curve (S1) instead of (S0) in
the paper's Fig. 8.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Tuple

from ..bjt.parameters import BJTParameters, PAPER_PNP_SMALL
from ..errors import ExtractionError


@dataclass(frozen=True)
class ModelCard:
    """A named (EG, XTI) couple bound to a base device."""

    eg: float
    xti: float
    base: BJTParameters = PAPER_PNP_SMALL
    name: str = "QEXTRACTED"
    source: str = ""

    def parameters(self) -> BJTParameters:
        """The full parameter set with the extracted couple installed."""
        return replace(self.base, eg=self.eg, xti=self.xti, name=self.name)

    def render(self) -> str:
        """The ``.MODEL`` line."""
        return self.parameters().model_card()

    @property
    def couple(self) -> Tuple[float, float]:
        return self.eg, self.xti


_MODEL_RE = re.compile(
    r"\.MODEL\s+(?P<name>\S+)\s+(?P<kind>NPN|PNP)\s*\((?P<body>[^)]*)\)",
    re.IGNORECASE,
)


def parse_model_card(text: str, base: BJTParameters = PAPER_PNP_SMALL) -> ModelCard:
    """Read the (EG, XTI) couple back from a ``.MODEL`` line."""
    match = _MODEL_RE.search(text)
    if match is None:
        raise ExtractionError("no .MODEL statement found")
    fields = {}
    for token in match.group("body").split():
        if "=" not in token:
            raise ExtractionError(f"malformed model parameter {token!r}")
        key, _, value = token.partition("=")
        fields[key.upper()] = float(value)
    if "EG" not in fields or "XTI" not in fields:
        raise ExtractionError("model card lacks EG/XTI")
    return ModelCard(
        eg=fields["EG"], xti=fields["XTI"], base=base, name=match.group("name")
    )
