"""The analytical extraction (paper eqs. 14-15, after Meijer [13]).

Three measured points ``(T1, VBE(T1)), (T2, VBE(T2)), (T3, VBE(T3))``
give two exact linear equations in (EG, XTI):

    T2*VBE(T1) - T1*VBE(T2) = EG*(T2 - T1)
                              - XTI*(k*T1*T2/q)*ln(T1/T2)
                              + (k*T1*T2/q)*ln(IC(T1)/IC(T2))

and the same with (T3, T2).  Solving the 2x2 system is the whole
method — no regression, no iteration, and only the *ratios* of the
collector currents enter (the eqs. 17-18 generalisation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..constants import K_OVER_Q
from ..errors import ExtractionError


@dataclass(frozen=True)
class MeijerResult:
    """The analytically extracted couple."""

    eg: float
    xti: float
    t1: float
    t2: float
    t3: float

    @property
    def couple(self) -> Tuple[float, float]:
        return self.eg, self.xti


def _pair_equation(
    t_a: float, t_b: float, vbe_a: float, vbe_b: float,
    ic_a: Optional[float], ic_b: Optional[float],
) -> Tuple[float, float, float]:
    """One row of the system: coefficients (of EG, of XTI) and RHS."""
    if t_a <= 0.0 or t_b <= 0.0 or t_a == t_b:
        raise ExtractionError("need distinct positive temperatures")
    coeff_eg = t_b - t_a
    coeff_xti = -K_OVER_Q * t_a * t_b * math.log(t_a / t_b)
    rhs = t_b * vbe_a - t_a * vbe_b
    if (ic_a is None) != (ic_b is None):
        raise ExtractionError("provide both currents of a pair, or neither")
    if ic_a is not None:
        if ic_a <= 0.0 or ic_b <= 0.0:
            raise ExtractionError("collector currents must be positive")
        rhs -= K_OVER_Q * t_a * t_b * math.log(ic_a / ic_b)
    return coeff_eg, coeff_xti, rhs


def meijer_extract(
    temperatures_k: Tuple[float, float, float],
    vbe_v: Tuple[float, float, float],
    currents_a: Optional[Tuple[float, float, float]] = None,
) -> MeijerResult:
    """Solve eqs. 14-15 exactly for (EG, XTI).

    ``temperatures_k`` are (T1, T2, T3) with T2 the reference;
    ``currents_a`` the matching collector currents when the bias was not
    constant (paper eqs. 17-18).
    """
    t1, t2, t3 = (float(t) for t in temperatures_k)
    v1, v2, v3 = (float(v) for v in vbe_v)
    if currents_a is None:
        i1 = i2 = i3 = None
    else:
        i1, i2, i3 = (float(i) for i in currents_a)
    row1 = _pair_equation(t1, t2, v1, v2, i1, i2)
    row2 = _pair_equation(t3, t2, v3, v2, i3, i2)
    matrix = np.array([[row1[0], row1[1]], [row2[0], row2[1]]])
    rhs = np.array([row1[2], row2[2]])
    det = float(np.linalg.det(matrix))
    if abs(det) < 1e-12:
        raise ExtractionError(
            "singular Meijer system: the three temperatures do not separate "
            "EG from XTI (too close together?)"
        )
    eg, xti = np.linalg.solve(matrix, rhs)
    return MeijerResult(eg=float(eg), xti=float(xti), t1=t1, t2=t2, t3=t3)


def meijer_line(
    t_a: float,
    t_b: float,
    vbe_a: float,
    vbe_b: float,
    ic_a: Optional[float] = None,
    ic_b: Optional[float] = None,
) -> Tuple[float, float]:
    """One Meijer equation as an EG(XTI) line: ``(slope, intercept)``.

    A single temperature pair constrains the couple to a line in the
    (XTI, EG) plane — this is how the analytical method draws its own
    "characteristic straight" in the paper's Fig. 6 (curves C2/C3); the
    full solve intersects two such lines.
    """
    coeff_eg, coeff_xti, rhs = _pair_equation(t_a, t_b, vbe_a, vbe_b, ic_a, ic_b)
    return -coeff_xti / coeff_eg, rhs / coeff_eg
