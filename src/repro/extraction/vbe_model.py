"""The VBE(T) forward model of paper eq. 13.

Starting from ``IC = IS(T) * exp(VBE/VT)`` and the SPICE law (eq. 1),
the base-emitter voltage at temperature ``T`` referred to a measured
point ``(T0, VBE(T0))`` is

    VBE(T) = (T/T0) * VBE(T0)
           + EG * (1 - T/T0)
           - XTI * VT(T) * ln(T/T0)
           + VT(T) * ln(IC(T)/IC(T0))

(the constant-current case drops the last term).  Paper eq. 13 applies a
further reverse-Early (``VAR``) correction — in the Gummel-Poon model
the base charge multiplies ``IS`` by ``(1 - VBE/VAR)``, so the measured
``VBE`` satisfies a mildly implicit equation that
:func:`vbe_characteristic` solves by fixed point when ``var`` is given.

The model is *linear in (EG, XTI)* given the reference point, which is
what makes the classical extraction a plain least-squares problem — and
what makes EG and XTI inseparable: over a finite temperature range the
two basis functions ``(1 - T/T0)`` and ``-VT(T) ln(T/T0)`` are nearly
collinear (both vanish at T0 with proportional slopes), producing the
paper's "characteristic straight" of equivalent couples.
"""

from __future__ import annotations

import math
from typing import Tuple

from ..constants import thermal_voltage
from ..errors import ExtractionError


def vbe_reference_terms(
    temperature_k: float, reference_k: float
) -> Tuple[float, float]:
    """The (EG, XTI) basis functions ``a(T), b(T)`` at one temperature.

    ``VBE(T) - (T/T0) VBE(T0) - VT ln(IC/IC0) = EG * a(T) + XTI * b(T)``
    with ``a = 1 - T/T0`` and ``b = -VT(T) ln(T/T0)``.
    """
    if temperature_k <= 0.0 or reference_k <= 0.0:
        raise ExtractionError("temperatures must be positive")
    a = 1.0 - temperature_k / reference_k
    b = -thermal_voltage(temperature_k) * math.log(temperature_k / reference_k)
    return a, b


def vbe_characteristic(
    temperature_k: float,
    eg: float,
    xti: float,
    vbe_ref: float,
    reference_k: float,
    ic: float = None,
    ic_ref: float = None,
    var: float = None,
    max_iterations: int = 40,
) -> float:
    """Evaluate paper eq. 13 at one temperature [V].

    Parameters
    ----------
    eg, xti:
        The SPICE couple under evaluation.
    vbe_ref, reference_k:
        The measured anchor point ``(T0, VBE(T0))``.
    ic, ic_ref:
        Collector currents at ``T`` and ``T0``; both None means constant
        current (the term drops).
    var:
        Reverse Early voltage for the eq. 13 correction; None disables.
    """
    a, b = vbe_reference_terms(temperature_k, reference_k)
    base = (temperature_k / reference_k) * vbe_ref + eg * a + xti * b
    if (ic is None) != (ic_ref is None):
        raise ExtractionError("provide both ic and ic_ref, or neither")
    if ic is not None:
        if ic <= 0.0 or ic_ref <= 0.0:
            raise ExtractionError("collector currents must be positive")
        base += thermal_voltage(temperature_k) * math.log(ic / ic_ref)
    if var is None:
        return base
    if var <= 0.0:
        raise ExtractionError("VAR must be positive")
    # (1 - VBE/VAR) multiplies IS; referred to the anchor the correction
    # is +VT ln[(1 - VBE/VAR)/(1 - VBE0/VAR)], solved by fixed point.
    vt = thermal_voltage(temperature_k)
    ref_factor = 1.0 - vbe_ref / var
    if ref_factor <= 0.0:
        raise ExtractionError("anchor VBE exceeds VAR")
    vbe = base
    for _ in range(max_iterations):
        factor = 1.0 - vbe / var
        if factor <= 0.0:
            raise ExtractionError("VBE exceeded VAR during iteration")
        updated = base + vt * math.log(factor / ref_factor)
        if abs(updated - vbe) < 1e-15:
            return updated
        vbe = updated
    raise ExtractionError("eq. 13 VAR correction did not converge")
