"""End-to-end extraction pipelines (measurement campaign -> model card).

Binds the two methods to the simulated lab exactly as the paper's
section 5 describes:

* **Classical** — measure VBE(T) at several constant collector currents
  (or slice them from a Gummel family), best-fit eq. 13, and report the
  characteristic straight C1; the single "best" couple is chosen on the
  straight at a handbook ``XTI`` (what a foundry's standard model card
  effectively does).
* **Analytical** — measure the biased pair, compute the die temperatures
  from the dVBE ratios (eq. 16), then solve eqs. 14-15 twice: once with
  the sensor temperatures (C2) and once with the computed temperatures
  (C3).  ``T_measured - T_computed`` per point is Table 1's content.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ExtractionError
from ..measurement.campaign import MeasurementCampaign, PAPER_SWEEP_TEMPS_C
from ..measurement.dataset import DeltaVbeCurve, VbeTemperatureCurve
from ..units import celsius_to_kelvin
from .characteristic import CharacteristicStraight, characteristic_straight
from .meijer import MeijerResult, meijer_extract
from .modelcard import ModelCard
from .temperature import computed_temperatures_for_curve
from .vbe_fit import FitResult, fit_vbe_curves

#: The constant collector currents of the paper's section 5 fit
#: ("a range of current extending from IC=1e-8 to 1e-5 A").
PAPER_FIT_CURRENTS_A = (1e-8, 1e-7, 1e-6, 1e-5)

#: XTI a standard model card would assume (SPICE's default is 3.0).
HANDBOOK_XTI = 3.0


@dataclass
class ClassicalExtraction:
    """Output of the best-fitting method."""

    curves: List[VbeTemperatureCurve]
    fits: List[FitResult]
    straight: CharacteristicStraight
    handbook_xti: float = HANDBOOK_XTI

    @property
    def standard_card_couple(self) -> Tuple[float, float]:
        """(EG, XTI) a standard model card would carry: the point on the
        characteristic straight at the handbook XTI."""
        return self.straight.eg_at(self.handbook_xti), self.handbook_xti

    def model_card(self, name: str = "QSTD") -> ModelCard:
        eg, xti = self.standard_card_couple
        return ModelCard(eg=eg, xti=xti, name=name, source="classical best fit")


@dataclass
class AnalyticalExtraction:
    """Output of the test-structure method."""

    pair_curve: DeltaVbeCurve
    reference_k: float
    sensor_temperatures_k: np.ndarray
    computed_temperatures_k: np.ndarray
    point_indices: Tuple[int, int, int]
    couple_measured_t: MeijerResult
    couple_computed_t: MeijerResult

    @property
    def temperature_deltas_k(self) -> np.ndarray:
        """``T_measured - T_computed`` at (T1, T2, T3) — Table 1's rows."""
        i1, i2, i3 = self.point_indices
        measured = self.sensor_temperatures_k[[i1, i2, i3]]
        computed = self.computed_temperatures_k[[i1, i2, i3]]
        return measured - computed

    def model_card(self, name: str = "QANALYTIC") -> ModelCard:
        return ModelCard(
            eg=self.couple_computed_t.eg,
            xti=self.couple_computed_t.xti,
            name=name,
            source="analytical method, computed die temperatures",
        )


def run_classical_extraction(
    campaign: MeasurementCampaign,
    currents_a: Sequence[float] = PAPER_FIT_CURRENTS_A,
    temps_c: Sequence[float] = PAPER_SWEEP_TEMPS_C,
    handbook_xti: float = HANDBOOK_XTI,
) -> ClassicalExtraction:
    """The paper's first method on a simulated chip."""
    curves = [campaign.measure_vbe_curve(ic, temps_c) for ic in currents_a]
    fits = fit_vbe_curves(curves)
    straight = characteristic_straight(curves, label="C1")
    return ClassicalExtraction(
        curves=curves, fits=fits, straight=straight, handbook_xti=handbook_xti
    )


def run_analytical_extraction(
    campaign: MeasurementCampaign,
    temps_c: Sequence[float] = PAPER_SWEEP_TEMPS_C,
    point_temps_c: Tuple[float, float, float] = (-25.0, 25.0, 75.0),
    vce_headroom: float = 0.05,
    correct_offset: bool = False,
    apply_current_correction: bool = None,
) -> AnalyticalExtraction:
    """The paper's test-structure method on a simulated chip.

    ``point_temps_c`` are the (T1, T2, T3) chamber settings of section 5
    (data at -25 C and +75 C, reference at 25 C).

    ``correct_offset`` selects the P4/P5-corrected dVBE readout.  The
    Table-1 study uses the raw readout (showing the sensor-vs-computed
    discrepancy); the model card for the paper's Fig. 8 (S1) uses the
    corrected one, whose computed temperatures track the real die
    temperatures and therefore recover the device's true couple.

    ``apply_current_correction`` enables the eqs. 19-20 X-correction of
    the computed temperatures from the measured branch currents; it
    defaults to following ``correct_offset`` (both corrections belong to
    the full method).
    """
    if apply_current_correction is None:
        apply_current_correction = correct_offset
    pair_curve = campaign.measure_pair(
        temps_c=temps_c, vce_headroom=vce_headroom, correct_offset=correct_offset
    )
    reference_k = celsius_to_kelvin(point_temps_c[1])
    x_values = None
    if apply_current_correction and pair_curve.has_currents:
        ref_index = pair_curve.nearest_index(reference_k)
        x_values = pair_curve.current_ratio_x_values(ref_index)
    computed = computed_temperatures_for_curve(
        pair_curve, reference_k=reference_k, x_values=x_values
    )

    indices = tuple(
        pair_curve.nearest_index(celsius_to_kelvin(t)) for t in point_temps_c
    )
    i1, i2, i3 = indices
    if len({i1, i2, i3}) != 3:
        raise ExtractionError("the three extraction points must be distinct")
    vbe_points = tuple(float(pair_curve.vbe_a_v[i]) for i in indices)

    sensor_points = tuple(float(pair_curve.sensor_temperatures_k[i]) for i in indices)
    couple_measured = meijer_extract(sensor_points, vbe_points)

    computed_points = (
        float(computed[i1]),
        float(pair_curve.sensor_temperatures_k[i2]),
        float(computed[i3]),
    )
    couple_computed = meijer_extract(computed_points, vbe_points)

    return AnalyticalExtraction(
        pair_curve=pair_curve,
        reference_k=reference_k,
        sensor_temperatures_k=np.asarray(pair_curve.sensor_temperatures_k, float),
        computed_temperatures_k=computed,
        point_indices=indices,
        couple_measured_t=couple_measured,
        couple_computed_t=couple_computed,
    )
