"""The EG(XTI) "characteristic straight" (paper Fig. 6).

Because the two basis functions of eq. 13 are nearly collinear over any
finite temperature range, fixing XTI and fitting only EG yields an
almost equally good fit for *every* XTI — the resulting (XTI, EG)
couples fall on a straight line.  The paper plots three such lines: C1
from the best-fitting method, C2/C3 from the analytical method with
measured/computed temperatures.

The line's slope is analytic: from eq. 14,
``dEG/dXTI = (k/q) * T1*T3*ln(T3/T1)/(T3 - T1)`` — about 23 meV per
unit of XTI for the paper's temperature points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..constants import K_OVER_Q
from ..errors import ExtractionError
from ..measurement.dataset import VbeTemperatureCurve
from .vbe_fit import _design_rows


@dataclass(frozen=True)
class CharacteristicStraight:
    """A fitted EG(XTI) line with the couples it was built from."""

    xti_values: np.ndarray
    eg_values: np.ndarray
    slope: float
    intercept: float
    label: str = ""

    def eg_at(self, xti: float) -> float:
        """EG on the line for a given XTI [eV]."""
        return self.intercept + self.slope * xti

    def couple_at(self, xti: float) -> tuple:
        """The (EG, XTI) couple on the line at a chosen XTI."""
        return self.eg_at(xti), xti

    def offset_from(self, other: "CharacteristicStraight", xti: float = 3.5) -> float:
        """Vertical EG distance to another straight at a given XTI [eV]."""
        return self.eg_at(xti) - other.eg_at(xti)


def theoretical_slope(t_low: float, t_high: float) -> float:
    """``dEG/dXTI`` implied by eq. 14 for a temperature pair [eV/XTI]."""
    if t_low <= 0.0 or t_high <= 0.0 or t_low == t_high:
        raise ExtractionError("need two distinct positive temperatures")
    return K_OVER_Q * t_low * t_high * math.log(t_high / t_low) / (t_high - t_low)


def characteristic_straight(
    curves: Sequence[VbeTemperatureCurve],
    xti_grid: Sequence[float] = None,
    reference_k: float = None,
    label: str = "",
) -> CharacteristicStraight:
    """Scan XTI, fit EG only, and fit the resulting line.

    ``xti_grid`` defaults to the paper's Fig. 6 x-axis (0.5 to 6.5).
    For each fixed XTI the one-parameter least squares over *all* curves
    (the paper fits "the complete set of VBE(T) characteristics measured
    on a range of current") gives the companion EG.
    """
    if not curves:
        raise ExtractionError("no curves supplied")
    if xti_grid is None:
        xti_grid = np.linspace(0.5, 6.5, 25)
    xti_grid = np.asarray(xti_grid, dtype=float)

    designs, targets = [], []
    for curve in curves:
        temps = np.asarray(curve.temperatures_k, float)
        vbes = np.asarray(curve.vbe_v, float)
        if reference_k is None:
            ref_idx = int(np.argmin(np.abs(temps - 298.15)))
        else:
            ref_idx = int(np.argmin(np.abs(temps - reference_k)))
        design, target, _, _ = _design_rows(temps, vbes, None, ref_idx)
        designs.append(design)
        targets.append(target)
    design = np.vstack(designs)
    target = np.concatenate(targets)

    a_col, b_col = design[:, 0], design[:, 1]
    a_dot_a = float(a_col @ a_col)
    if a_dot_a == 0.0:
        raise ExtractionError("degenerate data: no temperature spread")
    eg_values = np.array(
        [float(a_col @ (target - xti * b_col)) / a_dot_a for xti in xti_grid]
    )
    slope, intercept = np.polyfit(xti_grid, eg_values, 1)
    return CharacteristicStraight(
        xti_values=xti_grid,
        eg_values=eg_values,
        slope=float(slope),
        intercept=float(intercept),
        label=label,
    )


def straight_from_couples(
    couples: Sequence[tuple], label: str = ""
) -> CharacteristicStraight:
    """Build a straight from explicit (EG, XTI) couples.

    Used for C2/C3: the analytical method yields one couple per choice
    of temperature pair/current; plotting several traces the line.
    """
    if len(couples) < 2:
        raise ExtractionError("need at least two couples for a line")
    egs = np.array([c[0] for c in couples], dtype=float)
    xtis = np.array([c[1] for c in couples], dtype=float)
    slope, intercept = np.polyfit(xtis, egs, 1)
    return CharacteristicStraight(
        xti_values=xtis,
        eg_values=egs,
        slope=float(slope),
        intercept=float(intercept),
        label=label,
    )
