"""Parameter extraction: the paper's two methods side by side.

* Classical best fitting of ``VBE(T)`` at constant collector current
  (paper eq. 13): :mod:`repro.extraction.vbe_fit`, with the resulting
  EG(XTI) correlation line in :mod:`repro.extraction.characteristic`;
* The analytical Meijer method (paper eqs. 14-16 and the current-ratio
  correction eqs. 17-20): :mod:`repro.extraction.meijer` and
  :mod:`repro.extraction.temperature`;
* End-to-end pipelines binding measurement campaigns to extracted model
  cards: :mod:`repro.extraction.pipeline`.
"""

from .vbe_model import vbe_characteristic, vbe_reference_terms
from .vbe_fit import FitResult, fit_vbe_characteristic, fit_vbe_curves
from .characteristic import CharacteristicStraight, characteristic_straight
from .meijer import MeijerResult, meijer_extract
from .temperature import (
    a_coefficient,
    computed_temperature,
    computed_temperatures_for_curve,
    current_ratio_x,
)
from .modelcard import ModelCard
from .pipeline import (
    AnalyticalExtraction,
    ClassicalExtraction,
    run_analytical_extraction,
    run_classical_extraction,
)

__all__ = [
    "vbe_characteristic",
    "vbe_reference_terms",
    "FitResult",
    "fit_vbe_characteristic",
    "fit_vbe_curves",
    "CharacteristicStraight",
    "characteristic_straight",
    "MeijerResult",
    "meijer_extract",
    "a_coefficient",
    "computed_temperature",
    "computed_temperatures_for_curve",
    "current_ratio_x",
    "ModelCard",
    "ClassicalExtraction",
    "AnalyticalExtraction",
    "run_classical_extraction",
    "run_analytical_extraction",
]
