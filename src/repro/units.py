"""Unit helpers: temperature scales, energy scales and SI formatting.

The paper mixes Celsius (chamber settings, Fig. 5/8 axes) and kelvin
(physics equations, Table 1).  Keeping the conversions in one place keeps
the off-by-273.15 class of bugs out of the physics modules.
"""

from __future__ import annotations

from typing import Iterable, List

from .constants import Q_ELECTRON, ZERO_CELSIUS


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from degrees Celsius to kelvin."""
    temp_k = temp_c + ZERO_CELSIUS
    if temp_k < 0.0:
        raise ValueError(f"{temp_c} C is below absolute zero")
    return temp_k


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from kelvin to degrees Celsius."""
    if temp_k < 0.0:
        raise ValueError(f"{temp_k} K is below absolute zero")
    return temp_k - ZERO_CELSIUS


def celsius_range_to_kelvin(temps_c: Iterable[float]) -> List[float]:
    """Convert an iterable of Celsius temperatures to a list in kelvin."""
    return [celsius_to_kelvin(t) for t in temps_c]


def ev_to_joule(energy_ev: float) -> float:
    """Convert an energy from electron-volts to joules."""
    return energy_ev * Q_ELECTRON


def joule_to_ev(energy_j: float) -> float:
    """Convert an energy from joules to electron-volts."""
    return energy_j / Q_ELECTRON


_SI_PREFIXES = (
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
)


def format_si(value: float, unit: str = "", digits: int = 4) -> str:
    """Format ``value`` with an engineering SI prefix, e.g. ``53.22 mV``.

    Zero and non-finite values fall back to plain formatting.  Used by the
    experiment reports so the regenerated tables read like the paper's.
    """
    if value == 0.0 or value != value or value in (float("inf"), float("-inf")):
        return f"{value:g} {unit}".rstrip()
    magnitude = abs(value)
    for scale, prefix in _SI_PREFIXES:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()
    scale, prefix = _SI_PREFIXES[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()


def parse_si(text: str) -> float:
    """Parse a SPICE-style suffixed number: ``2k`` -> 2000, ``25n`` -> 2.5e-8.

    Recognises the SPICE suffixes ``t g meg k m u n p f`` (case
    insensitive); ``meg`` must be checked before ``m``.  A bare float is
    returned unchanged.  Raises ``ValueError`` for unparseable text.
    """
    raw = text.strip().lower()
    if not raw:
        raise ValueError("empty numeric literal")
    suffixes = (
        ("meg", 1e6),
        ("t", 1e12),
        ("g", 1e9),
        ("k", 1e3),
        ("m", 1e-3),
        ("u", 1e-6),
        ("n", 1e-9),
        ("p", 1e-12),
        ("f", 1e-15),
    )
    for suffix, scale in suffixes:
        if raw.endswith(suffix):
            stem = raw[: -len(suffix)]
            if not stem:
                break
            try:
                return float(stem) * scale
            except ValueError:
                break
    return float(raw)
