"""Legacy setup shim.

The offline environment carries a setuptools too old for PEP 660 editable
installs driven purely by pyproject.toml; this shim lets
``pip install -e . --no-use-pep517`` (and plain ``pip install -e .`` on
older pips) take the classic ``setup.py develop`` path.  All metadata
lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
)
