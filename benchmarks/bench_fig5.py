"""Benchmark E2: regenerate Fig. 5 (IC(VBE) family over temperature)."""

from repro.experiments import run_experiment

from .conftest import assert_and_report


def test_fig5_ic_vbe_family(benchmark):
    result = benchmark(run_experiment, "fig5")
    assert_and_report(result)
