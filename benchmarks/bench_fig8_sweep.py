"""Benchmark: the Fig. 8 temperature sweep at netlist level.

The solver-bound workload behind the paper's closing figure: the full
bandgap test cell solved across the -80..+145 C grid with warm-start
chaining — the workload the compiled assembly engine and factorization
reuse were built for.  Three legs:

* a **cold Session sweep** (fresh session per round — directly
  comparable to the PR-3/PR-4 ``temperature_sweep`` baseline, ~39 ms on
  the 1-CPU CI container);
* the whole six-configuration Fig. 8 family through the Session batch
  layer (one recipe+plan pair per configuration; REPRO_WORKERS fans
  groups out on multi-core hosts);
* a **warm Session sweep**: the session already holds ONE solved
  room-temperature point (seeded un-timed in the per-round setup), so
  the sweep's anchored traversal warm-starts off it and the cold-start
  gain-stepping ladder — ~60 % of the cold sweep's wall time — never
  runs.  This is the solved-point-cache win of PR 5: committed numbers
  in ``benchmarks/BENCH_2026-07-27_session.json`` show ~2x against the
  cold leg.
"""

import numpy as np

from repro.circuits.bandgap_cell import BandgapCellConfig, build_bandgap_cell
from repro.experiments.fig8_vref_curves import FIG8_TEMPS_C
from repro.spice.plans import OP, TempSweep
from repro.spice.session import Session, SessionRecipe, run_plans
from repro.units import celsius_to_kelvin

TEMPS_K = tuple(celsius_to_kelvin(t) for t in FIG8_TEMPS_C)

#: The Fig. 8 configuration family: nominal cell plus the RadjA sweep.
CONFIGS = [
    BandgapCellConfig(),
    BandgapCellConfig(radja=1.8e3),
    BandgapCellConfig(radja=2.5e3),
    BandgapCellConfig(radja=2.7e3),
]

#: Off-grid seed temperature for the warm leg (27 C; the grid holds
#: 25 C), so the anchored first point is a *warm start*, not an exact
#: hit — the counters then prove the warm-start path ran.
SEED_K = 300.15


def _assert_vref_window(values: np.ndarray) -> None:
    assert np.all((1.15 < values) & (values < 1.30)), values


def test_fig8_netlist_temperature_sweep(benchmark):
    """Cold Session sweep over the full Fig. 8 temperature grid.

    A fresh session per round (built un-timed in setup) keeps every
    round cold — the apples-to-apples successor of the legacy
    ``temperature_sweep`` leg.
    """
    result_box = {}

    def setup():
        return (Session(build_bandgap_cell),), {}

    def run(session):
        result_box["result"] = session.run(TempSweep(temperatures_k=TEMPS_K))
        return result_box["result"]

    benchmark.pedantic(run, setup=setup, rounds=3, warmup_rounds=0)
    _assert_vref_window(result_box["result"].voltage("vref"))


def test_fig8_batch_all_configurations(benchmark):
    """The whole configuration family as Session batch groups."""

    def run():
        pairs = [
            (
                SessionRecipe(builder=build_bandgap_cell, args=(config,)),
                TempSweep(temperatures_k=TEMPS_K),
            )
            for config in CONFIGS
        ]
        return run_plans(pairs)

    results = benchmark(run)
    for result in results:
        _assert_vref_window(result.voltage("vref"))
    # RadjA progressively flattens the curve family, as in the paper.
    spans = [float(np.ptp(result.voltage("vref"))) for result in results]
    assert spans[0] > spans[-1]


def test_fig8_session_cached_sweep(benchmark):
    """Warm Session sweep: one cached point amortises the ladder.

    Per-round setup (un-timed) builds a fresh session and solves ONE
    room-temperature operating point — paying the gain-stepping ladder
    once, outside the measurement.  The timed sweep then anchors at the
    grid point nearest the cached solution, warm-starts there, and
    chains outward: zero ladders inside the measured region.  The
    target of ISSUE 5: >= 1.3x against the ~39 ms cold baseline.
    """
    result_box = {}

    def setup():
        session = Session(build_bandgap_cell)
        session.run(OP(temperature_k=SEED_K))
        return (session,), {}

    def run(session):
        warm_before = session.cache_warm_starts
        result_box["result"] = session.run(TempSweep(temperatures_k=TEMPS_K))
        result_box["warm_starts"] = session.cache_warm_starts - warm_before
        return result_box["result"]

    benchmark.pedantic(run, setup=setup, rounds=3, warmup_rounds=0)
    _assert_vref_window(result_box["result"].voltage("vref"))
    # The counter proves the measured sweep really warm-started off the
    # seeded point instead of paying its own cold ladder.
    assert result_box["warm_starts"] == 1, result_box
