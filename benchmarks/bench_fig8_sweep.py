"""Benchmark: the Fig. 8 temperature sweep at netlist level.

The solver-bound workload behind the paper's closing figure: the full
bandgap test cell solved across the -80..+145 C grid with warm-start
chaining — the workload the compiled assembly engine and factorization
reuse were built for.  A second benchmark runs the same grid for the
whole six-configuration Fig. 8 family through ``solve_batch`` (one
warm-start chain per configuration; REPRO_WORKERS fans chains out on
multi-core hosts).

Committed before/after (1-CPU container, see README "Performance"):
single-chain sweep 0.128 s -> 0.039 s (3.2x) versus the pre-PR
element-by-element assembler with per-iteration ``np.linalg.solve``.
"""

import numpy as np

from repro.circuits.bandgap_cell import BandgapCellConfig, build_bandgap_cell
from repro.experiments.fig8_vref_curves import FIG8_TEMPS_C
from repro.spice.analysis import SweepChain, solve_batch, temperature_sweep
from repro.units import celsius_to_kelvin

TEMPS_K = tuple(celsius_to_kelvin(t) for t in FIG8_TEMPS_C)

#: The Fig. 8 configuration family: nominal cell plus the RadjA sweep.
CONFIGS = [
    BandgapCellConfig(),
    BandgapCellConfig(radja=1.8e3),
    BandgapCellConfig(radja=2.5e3),
    BandgapCellConfig(radja=2.7e3),
]


def _assert_vref_window(values: np.ndarray) -> None:
    assert np.all((1.15 < values) & (values < 1.30)), values


def test_fig8_netlist_temperature_sweep(benchmark):
    """One warm-start chain over the full Fig. 8 temperature grid."""
    circuit = build_bandgap_cell()
    result = benchmark(temperature_sweep, circuit, TEMPS_K)
    _assert_vref_window(result.voltage("vref"))


def test_fig8_batch_all_configurations(benchmark):
    """The whole configuration family as parallel warm-start chains."""
    chains = [
        SweepChain(builder=build_bandgap_cell, args=(config,), temperatures_k=TEMPS_K)
        for config in CONFIGS
    ]
    results = benchmark(solve_batch, chains)
    for result in results:
        _assert_vref_window(result.voltage("vref"))
    # RadjA progressively flattens the curve family, as in the paper.
    spans = [float(np.ptp(result.voltage("vref"))) for result in results]
    assert spans[0] > spans[-1]
