"""Ablation benchmark: netlist MNA path vs behavioural bandgap path."""

from repro.experiments import run_experiment

from .conftest import assert_and_report


def test_ablation_solver(benchmark):
    result = benchmark(run_experiment, "ablation_solver")
    assert_and_report(result)
