"""Benchmark: scalar vs vectorized device-group evaluation.

The workload the group engine was built for: a netlist with *many*
homogeneous devices (a 64-BJT bank plus a 32-diode string — the shape
of a Monte-Carlo lot or a segmented/array-style reference), driven
through the exact call pattern of one Newton iteration: a residual-only
line-search probe followed by a full (J, F) assembly at the same
iterate.

Committed numbers from the 1-CPU CI container (see README "Vectorized
device evaluation"): the grouped pass is ~4x faster than the scalar
per-element loop at 64+32 devices and the gap grows linearly with
device count — one NumPy ufunc call costs ~0.5 us of dispatch no
matter the array length, so the group pass is essentially flat in n
while the scalar loop pays ~5 us per device.  Below ~12 devices of a
class the scalar loop wins, which is why grouping is size-adaptive
(``REPRO_GROUP_MIN``); both benches force their path explicitly so the
comparison is always exercised.
"""

import numpy as np

from repro.bjt.parameters import PAPER_PNP_SMALL
from repro.spice import Circuit, Resistor, VoltageSource
from repro.spice.elements.bjt import SpiceBJT
from repro.spice.elements.diode import Diode
from repro.spice.mna import MNASystem
from repro.spice.solver import solve_dc_system
from repro.spice.stats import STATS

N_BJTS = 64
N_DIODES = 32


def _device_bank() -> Circuit:
    circuit = Circuit(f"{N_BJTS}-BJT / {N_DIODES}-diode bank")
    circuit.add(VoltageSource("V1", "vcc", "0", 3.0))
    for index in range(N_BJTS):
        circuit.add(Resistor(f"R{index}", "vcc", f"e{index}", 30e3))
        circuit.add(
            SpiceBJT(f"Q{index}", "0", "0", f"e{index}", PAPER_PNP_SMALL)
        )
    for index in range(N_DIODES):
        circuit.add(Resistor(f"RD{index}", "vcc", f"d{index}", 50e3))
        circuit.add(Diode(f"D{index}", f"d{index}", "0"))
    return circuit


def _newton_iteration_workload(system: MNASystem, iterates) -> float:
    """One Newton iteration's assembly pattern per iterate."""
    total = 0.0
    for x in iterates:
        residual = system.assemble_residual(x)
        _, full = system.assemble(x)
        total += float(residual[0]) + float(full[0])
    return total


def _iterates(size: int):
    rng = np.random.default_rng(5)
    base = np.full(size, 0.55)
    return [base + rng.normal(0.0, 1e-3, size) for _ in range(16)]


def test_device_eval_vectorized(benchmark):
    circuit = _device_bank()
    system = MNASystem(circuit, vectorized=True)
    assert system.vectorized
    iterates = _iterates(system.size)
    STATS.reset()
    benchmark(_newton_iteration_workload, system, iterates)
    # The grouped path must actually have run (2 groups x 2 passes x
    # len(iterates) per round, but at least one round's worth).
    assert STATS.group_evals >= 4 * len(iterates)
    assert STATS.grouped_device_evals > 0


def test_device_eval_scalar(benchmark):
    circuit = _device_bank()
    system = MNASystem(circuit, vectorized=False)
    assert not system.vectorized
    iterates = _iterates(system.size)
    STATS.reset()
    benchmark(_newton_iteration_workload, system, iterates)
    assert STATS.group_evals == 0


def test_device_eval_paths_agree():
    """Not a timing: the two benched paths must produce the same (J, F)
    (the equivalence suite pins this at 1e-12; here it guards the bench
    itself against drifting into comparing different math)."""
    circuit = _device_bank()
    vectorized = MNASystem(circuit, vectorized=True)
    scalar = MNASystem(circuit, vectorized=False)
    x = _iterates(vectorized.size)[0]
    jv, fv = vectorized.assemble(x)
    js, fs = scalar.assemble(x)
    scale = float(np.max(np.abs(js)))
    np.testing.assert_allclose(jv, js, rtol=1e-12, atol=1e-12 * scale)
    np.testing.assert_allclose(fv, fs, rtol=1e-12, atol=1e-12)


def test_device_bank_solve_vectorized(benchmark):
    """End to end: full DC solve of the bank on the grouped path."""
    circuit = _device_bank()
    system = MNASystem(circuit, vectorized=True)
    STATS.reset()
    solution = benchmark(solve_dc_system, system)
    assert STATS.group_evals > 0
    emitter = circuit.node_index("e0")
    assert 0.3 < float(solution.x[emitter]) < 1.0
