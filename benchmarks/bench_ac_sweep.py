"""Benchmark: the AC small-signal sweep family.

The frequency-domain workload behind the PSRR / loop-gain / output-
impedance experiments: linearise the AC-ready bandgap cell at a solved
operating point and sweep the complex system over a log frequency grid.
One benchmark times a single linearise-and-sweep (DC solve included —
that is the real cost profile of the workload); a second times the
multi-temperature family through the Session batch layer (one plan per
temperature against one recipe, REPRO_WORKERS fans groups out on
multi-core hosts); a third isolates the pure complex-sweep cost by
reusing one linearisation across repeated sweeps.
"""

import numpy as np

from repro.experiments.ac_common import build_psrr_cell
from repro.spice.ac import ACSystem, log_frequencies
from repro.spice.plans import ACSweep, OP
from repro.spice.session import Session, SessionRecipe, run_plans

FREQS = tuple(log_frequencies(10.0, 1e7, points_per_decade=4))
TEMPS_K = (247.0, 297.0, 348.0)


def _assert_psrr_window(result) -> None:
    psrr_db = -result.magnitude_db("vref")
    assert np.all(psrr_db > 40.0), psrr_db


def test_ac_single_sweep(benchmark):
    """DC solve + linearisation + one 25-point complex sweep."""

    def run():
        ac_system = ACSystem.from_circuit(build_psrr_cell())
        return ac_system.solve(FREQS)

    _assert_psrr_window(benchmark(run))


def test_ac_batch_temperature_chains(benchmark):
    """The PSRR temperature family through the Session batch layer."""
    pairs = [
        (
            SessionRecipe(builder=build_psrr_cell),
            ACSweep(frequencies_hz=FREQS, temperatures_k=(temperature,)),
        )
        for temperature in TEMPS_K
    ]
    results = benchmark(run_plans, pairs)
    for result in results:
        _assert_psrr_window(result.ac_results[0])


def test_ac_resweep_reuses_linearisation(benchmark):
    """The pure complex-solve cost: one operating point, many sweeps."""
    session = Session(build_psrr_cell)
    op_result = session.run(OP())
    ac_system = ACSystem(session.system, op_result.op.x, op=op_result.op)
    _assert_psrr_window(benchmark(ac_system.solve, FREQS))
