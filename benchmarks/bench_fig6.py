"""Benchmark E3: regenerate Fig. 6 (characteristic straights C1/C2/C3)."""

from repro.experiments import run_experiment

from .conftest import assert_and_report


def test_fig6_characteristic_straight(benchmark):
    result = benchmark(run_experiment, "fig6")
    assert_and_report(result)
