"""Benchmark: REPRO_WORKERS process fan-out of independent plans.

The multi-core leg ROADMAP item 4 carried: the same plan batch run
serially and fanned across worker processes via ``Session.run_many``.
Correctness is pinned by assertions (serial and fanned runs must agree
bit-for-bit on every voltage); the wall-time comparison is **advisory
only** and never hard-gated, because CI hosts routinely expose a single
CPU — fan-out there measures process spawn overhead, not speedup.

    =====================================================================
    1-CPU HOST: FAN-OUT WALL TIMES ARE NOT MEANINGFUL ON THIS MACHINE.
    =====================================================================

That banner is printed (loudly) whenever ``os.cpu_count() < 2`` so a
log reader can never mistake a spawn-overhead number for a regression.
The campaign row recorded from this workload (``workers_fanout`` in
``benchmarks/index.json``) carries wall times only — the benchreg
compare layer treats unlisted metrics as informational, so the row can
never fail ``--bench-check``.
"""

import os

import numpy as np
import pytest

from repro.spice.hierarchy import bandgap_array
from repro.spice.parser import parse_netlist
from repro.spice.plans import OP
from repro.spice.session import Session

#: Cells in the fanned array (kept small: the workload ships one task
#: per plan, and the point is fan-out shape, not large-N).
ARRAY_CELLS = 24
#: One independent plan per temperature.
TEMP_GRID_K = tuple(np.linspace(260.15, 340.15, 8))
#: Worker counts benched against serial.
FANOUTS = (2, 4)

ONE_CPU = (os.cpu_count() or 1) < 2
ONE_CPU_BANNER = (
    "\n"
    "=====================================================================\n"
    "1-CPU HOST: FAN-OUT WALL TIMES ARE NOT MEANINGFUL ON THIS MACHINE.\n"
    "Process fan-out below measures spawn overhead, not speedup; the\n"
    "workers_fanout campaign row is advisory-only by construction.\n"
    "=====================================================================\n"
)


def build_array():
    """Module-level builder: picklable for the process fan-out recipe."""
    return parse_netlist(bandgap_array(cells=ARRAY_CELLS))


def _plans():
    return [OP(temperature_k=t, record=("o0",)) for t in TEMP_GRID_K]


def _voltages(results):
    return [result.voltage("o0") for result in results]


def _warn_if_one_cpu():
    if ONE_CPU:
        print(ONE_CPU_BANNER)


def test_run_many_serial(benchmark):
    """Baseline: the batch on one process, sharing one session cache."""
    _warn_if_one_cpu()
    session = Session(build_array)
    results = benchmark(session.run_many, _plans(), workers=1)
    assert len(results) == len(TEMP_GRID_K)


@pytest.mark.parametrize("workers", FANOUTS)
def test_run_many_fanned(benchmark, workers):
    """The same batch fanned over worker processes.

    Wall time is advisory (see the module banner); what is *asserted*
    is equality to solver tolerance — serial plans warm-start off each
    other inside one shared cache while fanned plans solve cold in
    their workers, so converged points agree to the Newton tolerances
    (the Session contract), not bit-for-bit.
    """
    _warn_if_one_cpu()
    serial = _voltages(Session(build_array).run_many(_plans(), workers=1))

    def fanned():
        return Session(build_array).run_many(_plans(), workers=workers)

    results = benchmark(fanned)
    assert np.allclose(_voltages(results), serial, rtol=0.0, atol=1e-7)
