"""Benchmark E5: regenerate Fig. 8 (VREF(T) curves and RadjA sweep)."""

from repro.experiments import run_experiment

from .conftest import assert_and_report


def test_fig8_vref_curves(benchmark):
    result = benchmark(run_experiment, "fig8")
    assert_and_report(result)
