"""Benchmark: the Fig. 2 bias principle (PTAT thermometer linearity)."""

from repro.experiments import run_experiment

from .conftest import assert_and_report


def test_fig2_bias_principle(benchmark):
    result = benchmark(run_experiment, "fig2")
    assert_and_report(result)
