"""Benchmark E1/E10: regenerate Fig. 1 (EG(T) model comparison)."""

from repro.experiments import run_experiment

from .conftest import assert_and_report


def test_fig1_bandgap_models(benchmark):
    result = benchmark(run_experiment, "fig1")
    assert_and_report(result)
