"""Benchmark (extension): sub-1V reference prototyped with the card."""

from repro.experiments import run_experiment

from .conftest import assert_and_report


def test_sub1v_extension(benchmark):
    result = benchmark(run_experiment, "sub1v_extension")
    assert_and_report(result)
