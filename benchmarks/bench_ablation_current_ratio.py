"""Benchmark E8: the eq. 19-20 current-ratio correction coefficient."""

from repro.experiments import run_experiment

from .conftest import assert_and_report


def test_ablation_current_ratio(benchmark):
    result = benchmark(run_experiment, "ablation_current_ratio")
    assert_and_report(result)
