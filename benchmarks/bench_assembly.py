"""Micro-benchmarks: per-iteration assembly and linear-solve cost.

These isolate the solver's innermost loop on the paper's bandgap cell:
one full ``(J, F)`` assembly and one residual-only evaluation, through
the compiled engine and through the retained element-by-element
reference path.  The compiled/reference pairing makes the speedup of
the cached-linear-part + COO-scatter design directly visible in the
benchmark table, and each benchmark asserts the two paths agree so a
fast-but-wrong assembler cannot slip through.
"""

import numpy as np
import pytest

from repro.circuits.bandgap_cell import build_bandgap_cell
from repro.spice.mna import MNASystem
from repro.spice.solver import SolverOptions, solve_dc


@pytest.fixture(scope="module")
def solved():
    """The cell, its solved operating point, and both assembler flavours."""
    circuit = build_bandgap_cell()
    solution = solve_dc(circuit)
    compiled = MNASystem(circuit, compiled=True)
    reference = MNASystem(circuit, compiled=False)
    # Prime the compiled caches so the benchmark measures steady state.
    compiled.assemble(solution.x)
    return circuit, solution.x, compiled, reference


def test_assemble_compiled(benchmark, solved):
    _, x, compiled, reference = solved
    jacobian, residual = benchmark(compiled.assemble, x)
    jr, fr = reference.assemble(x)
    np.testing.assert_allclose(jacobian, jr, rtol=1e-12, atol=1e-12)
    np.testing.assert_allclose(residual, fr, rtol=1e-12, atol=1e-12)


def test_assemble_reference(benchmark, solved):
    _, x, _, reference = solved
    benchmark(reference.assemble, x)


def test_residual_compiled(benchmark, solved):
    _, x, compiled, reference = solved
    residual = benchmark(compiled.assemble_residual, x)
    np.testing.assert_allclose(
        residual, reference.assemble_residual(x), rtol=1e-12, atol=1e-12
    )


def test_residual_reference(benchmark, solved):
    _, x, _, reference = solved
    benchmark(reference.assemble_residual, x)


def test_cold_dc_solve(benchmark):
    """The full cold-start DC solve (gain-stepping ladder included)."""
    result = benchmark(lambda: solve_dc(build_bandgap_cell()))
    assert result.strategy == "gain-stepping"


def test_cold_dc_solve_reference_path(benchmark, monkeypatch):
    """The same solve forced down the reference assembler, for the A/B."""
    monkeypatch.setenv("REPRO_COMPILED", "0")
    result = benchmark(lambda: solve_dc(build_bandgap_cell()))
    assert result.strategy == "gain-stepping"


def test_factorization_reuse_wins_on_large_ladder(benchmark):
    """LU reuse + sparse splu on a netlist-scale ladder (~240 unknowns)."""
    from repro.spice import Circuit, Resistor, VoltageSource
    from repro.spice.elements.diode import Diode

    def ladder():
        circuit = Circuit("ladder")
        circuit.add(VoltageSource("V1", "n0", "0", 5.0))
        for index in range(120):
            circuit.add(Resistor(f"R{index}", f"n{index}", f"d{index}", 2e3))
            circuit.add(Diode(f"D{index}", f"d{index}", f"n{index + 1}"))
        circuit.add(Resistor("RL", "n120", "0", 1e3))
        return circuit

    options = SolverOptions()
    result = benchmark(lambda: solve_dc(ladder(), options=options))
    assert result.residual < 1e-6
