"""Benchmark: VDD-ramp startup transient of both reference cells."""

from repro.experiments import run_experiment

from .conftest import assert_and_report


def test_startup_transient(benchmark):
    result = benchmark(run_experiment, "startup_transient")
    assert_and_report(result)
