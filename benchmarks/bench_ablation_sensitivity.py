"""Benchmarks E6/E7/E9: the error-propagation claims of section 3."""

from repro.experiments import run_experiment

from .conftest import assert_and_report


def test_ablation_sensitivity(benchmark):
    result = benchmark(run_experiment, "ablation_sensitivity")
    assert_and_report(result)
