"""Benchmark E4: regenerate Table 1 (sensor vs computed temperatures)."""

from repro.experiments import run_experiment

from .conftest import assert_and_report


def test_table1_die_temperatures(benchmark):
    result = benchmark(run_experiment, "table1")
    assert_and_report(result)
