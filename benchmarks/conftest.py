"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one paper artefact (table or
figure) through pytest-benchmark, asserts its shape checks, and prints
the regenerated rows so ``pytest benchmarks/ --benchmark-only -s``
doubles as the paper-reproduction report.
"""

import pytest

from repro.experiments import render_result


def assert_and_report(result):
    """Assert an experiment's shape checks and emit its table."""
    print()
    print(render_result(result))
    assert result.passed, f"{result.experiment_id} failing: {result.failing_checks()}"
    return result
