"""Benchmark: large-N hierarchical netlists through the sparse pipeline.

The workload ROADMAP item 4 demanded: generated ``.SUBCKT`` decks past
1k unknowns (see :mod:`repro.spice.hierarchy`), solved through sparse
assembly + ``splu``.  Three claims are pinned by counters, not walls
(1-CPU CI caveat):

* **CSC end-to-end**: the sparse assembly mode emits splu's native
  format, so ``STATS.sparse_conversions`` stays at 0 across a full
  solve — the per-iteration ``_csc_matrix(jacobian)`` rebuild this PR
  removed would increment it once per factorization.  The two
  ``factor``-path micro-legs make the difference directly visible:
  CSC input converts never, CSR input converts every call.
* **Sparse-tuned stale-LU policy**: on a warm-started re-solve
  workload the default policy (``sparse_reuse_limit=16``,
  ``sparse_reuse_contraction=0.4``) must spend no more factorizations
  — and take at least as many stale-LU steps — than the pre-PR policy
  (dense limits: 4 / 0.1) on the identical workload.
* **Linear scaling anchor**: the 1k-unknown ladder factors exactly
  once.
"""

import numpy as np

from repro.spice.hierarchy import bandgap_array, resistor_ladder
from repro.spice.mna import MNASystem
from repro.spice.parser import parse_netlist
from repro.spice.solver import NewtonWorkspace, SolverOptions, solve_dc_system
from repro.spice.stats import STATS

ARRAY_CELLS = 120
LADDER_SECTIONS = 500
#: Warm-started re-solve grid for the reuse-policy comparison [K].
RESWEEP_K = tuple(np.linspace(280.15, 320.15, 9))


def _array_system() -> MNASystem:
    return MNASystem(parse_netlist(bandgap_array(cells=ARRAY_CELLS)))


def test_large_n_array_solve(benchmark):
    """Cold DC solve of the ~1082-unknown nonlinear array."""
    system = _array_system()
    assert system.size >= 1000
    STATS.reset()
    solution = benchmark(solve_dc_system, system)
    # The large-N claims, as counters: the solve routed sparse, handed
    # splu CSC directly (zero conversions), and reused stale factors.
    assert STATS.sparse_assemblies > 0
    assert STATS.sparse_factorizations > 0
    assert STATS.sparse_conversions == 0
    assert solution.residual < 1e-9


def test_large_n_ladder_solve(benchmark):
    """Linear ~1k-unknown ladder: exactly one factorization per solve."""
    system = MNASystem(parse_netlist(resistor_ladder(sections=LADDER_SECTIONS)))
    assert system.size >= 1000
    STATS.reset()
    benchmark(solve_dc_system, system)
    # One factorization per benchmark round, sparse, conversion-free.
    assert STATS.factorizations == STATS.sparse_factorizations
    assert STATS.sparse_conversions == 0


def _factor_repeatedly(workspace, jacobian, options, rounds=8):
    for _ in range(rounds):
        assert workspace.factor(jacobian, options)


def test_factor_csc_direct(benchmark):
    """Factor a CSC Jacobian: splu's native format, zero conversions."""
    system = _array_system()
    jacobian, _ = system.assemble(np.zeros(system.size))
    assert jacobian.format == "csc"
    options = SolverOptions()
    STATS.reset()
    benchmark(_factor_repeatedly, NewtonWorkspace(), jacobian, options)
    assert STATS.sparse_factorizations > 0
    assert STATS.sparse_conversions == 0


def test_factor_csr_reconvert(benchmark):
    """Factor the same Jacobian from CSR: pays one conversion per call
    (the pre-PR pipeline's steady state — kept benched so the cost the
    CSC pipeline avoids stays measured)."""
    system = _array_system()
    jacobian, _ = system.assemble(np.zeros(system.size))
    jacobian_csr = jacobian.tocsr()
    options = SolverOptions()
    STATS.reset()
    benchmark(_factor_repeatedly, NewtonWorkspace(), jacobian_csr, options)
    assert STATS.sparse_factorizations > 0
    assert STATS.sparse_conversions == STATS.sparse_factorizations


def _warm_resweep(options: SolverOptions):
    """The sweep shape Session workloads produce: one system and one
    workspace, each temperature warm-started from the previous point.
    Returns (factorizations, lu_reuses) spent."""
    system = _array_system()
    workspace = NewtonWorkspace()
    before = STATS.snapshot()
    x = None
    for temperature in RESWEEP_K:
        system.set_temperature(temperature)
        solution = solve_dc_system(
            system, options=options, x0=x, workspace=workspace
        )
        x = solution.x
    delta = STATS.delta_since(before)
    assert delta["sparse_conversions"] == 0
    return delta["factorizations"], delta["lu_reuses"]


def test_sparse_reuse_policy_beats_legacy():
    """Not a timing: the sparse-tuned stale-LU policy must beat the
    pre-PR policy (dense limits applied to sparse factors) on
    factorization count for the identical warm-started sweep."""
    legacy = SolverOptions(sparse_reuse_limit=4, sparse_reuse_contraction=0.1)
    legacy_factorizations, legacy_reuses = _warm_resweep(legacy)
    tuned_factorizations, tuned_reuses = _warm_resweep(SolverOptions())
    assert tuned_factorizations <= legacy_factorizations
    assert tuned_reuses >= legacy_reuses
    # The whole point of the policy: on this workload it must actually
    # save factorizations, not merely tie.
    assert (tuned_factorizations < legacy_factorizations) or (
        tuned_reuses > legacy_reuses
    )
